"""Coordinated checkpointing: quiesce, snapshot, persist.

The protocol is the classic coordinated one, mapped onto the runtime's own
synchronization machinery:

1. **Quiesce.** Every participating image completes its outstanding
   one-sided traffic (``backend.quiet()`` — the release barrier plus
   FLUSH_ALL walk under CAF-MPI, handle sync under CAF-GASNet) and enters a
   team barrier, so no put, send, or event post is in flight anywhere when
   the snapshot is cut.
2. **Snapshot.** Each image deposits a copy of its registered state — every
   coarray segment, every event-slot count, plus an opaque app-state blob —
   into the agreement board.
3. **Commit.** The first image out of the barrier assembles the deposits
   into one versioned :class:`Checkpoint` and appends it to the
   :class:`CheckpointStore` (optionally persisting to disk); a second
   barrier publishes the commit.

Because the store holds *every* image's segments, a survivor can later read
a dead image's partition out of the last checkpoint — the simulation-level
stand-in for checkpointing to a parallel file system.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.caf.backends.common import collective_agree
from repro.util.errors import ResilienceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.caf.coarray import Coarray
    from repro.caf.events import EventArray
    from repro.caf.image import Image
    from repro.caf.teams import Team
    from repro.sim.cluster import Cluster

CHECKPOINT_VERSION = 1


@dataclass
class Checkpoint:
    """One committed, globally consistent snapshot.

    ``coarrays[rank]`` / ``events[rank]`` list that image's registered
    allocations *in allocation order* — the key a restarted run uses to
    find its own state again, and a shrink recovery uses to find the dead
    image's partitions.
    """

    step: int
    time: float
    nranks: int
    members: tuple[int, ...]  # world ranks that cut this checkpoint
    version: int = CHECKPOINT_VERSION
    coarrays: dict[int, list[np.ndarray]] = field(default_factory=dict)
    events: dict[int, list[list[int]]] = field(default_factory=dict)
    app_state: dict[int, Any] = field(default_factory=dict)

    def coarray_partition(self, rank: int, index: int) -> np.ndarray:
        """The saved segment of image ``rank``'s ``index``-th coarray."""
        try:
            return self.coarrays[rank][index]
        except (KeyError, IndexError):
            raise ResilienceError(
                f"checkpoint step {self.step} has no coarray {index} "
                f"for image {rank}"
            ) from None


class CheckpointStore:
    """Ordered checkpoint archive, in memory and optionally on disk.

    With ``dirpath`` set, every committed checkpoint is persisted as an
    ``.npz`` (array payloads) plus a ``.json`` sidecar (metadata and the
    JSON-serializable app state), and :meth:`load` can rebuild the store
    in a fresh process — the restart path.
    """

    def __init__(self, dirpath: str | Path | None = None):
        self.dirpath = Path(dirpath) if dirpath is not None else None
        self.checkpoints: list[Checkpoint] = []
        if self.dirpath is not None:
            self.dirpath.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self.checkpoints)

    def save(self, ckpt: Checkpoint) -> None:
        self.checkpoints.append(ckpt)
        if self.dirpath is not None:
            self._persist(ckpt)

    def latest(self) -> Checkpoint | None:
        return self.checkpoints[-1] if self.checkpoints else None

    # -- disk format -------------------------------------------------------

    def _paths(self, step: int) -> tuple[Path, Path]:
        assert self.dirpath is not None
        stem = self.dirpath / f"ckpt-{step:08d}"
        return stem.with_suffix(".npz"), stem.with_suffix(".json")

    def _persist(self, ckpt: Checkpoint) -> None:
        npz_path, json_path = self._paths(ckpt.step)
        arrays: dict[str, np.ndarray] = {}
        for rank, arrs in ckpt.coarrays.items():
            for i, arr in enumerate(arrs):
                arrays[f"co_{rank}_{i}"] = arr
        for rank, slots in ckpt.events.items():
            for i, counts in enumerate(slots):
                arrays[f"ev_{rank}_{i}"] = np.asarray(counts, np.int64)
        np.savez(npz_path, **arrays)
        meta = {
            "version": ckpt.version,
            "step": ckpt.step,
            "time": ckpt.time,
            "nranks": ckpt.nranks,
            "members": list(ckpt.members),
            "app_state": {str(r): s for r, s in ckpt.app_state.items()},
        }
        json_path.write_text(json.dumps(meta, indent=1, sort_keys=True))

    @classmethod
    def load(cls, dirpath: str | Path) -> "CheckpointStore":
        """Rebuild a store from a checkpoint directory (restart path)."""
        store = cls(dirpath)
        assert store.dirpath is not None
        for json_path in sorted(store.dirpath.glob("ckpt-*.json")):
            meta = json.loads(json_path.read_text())
            if meta["version"] != CHECKPOINT_VERSION:
                raise ResilienceError(
                    f"{json_path}: checkpoint version {meta['version']} "
                    f"!= supported {CHECKPOINT_VERSION}"
                )
            ckpt = Checkpoint(
                step=meta["step"],
                time=meta["time"],
                nranks=meta["nranks"],
                members=tuple(meta["members"]),
                app_state={int(r): s for r, s in meta["app_state"].items()},
            )
            with np.load(json_path.with_suffix(".npz")) as payload:
                for name in payload.files:
                    kind, rank_s, idx_s = name.split("_")
                    rank, idx = int(rank_s), int(idx_s)
                    table = ckpt.coarrays if kind == "co" else ckpt.events
                    lst = table.setdefault(rank, [])
                    while len(lst) <= idx:
                        lst.append(None)  # filled below
                    value = payload[name]
                    lst[idx] = value if kind == "co" else value.tolist()
            store.checkpoints.append(ckpt)
        return store


class ResilienceService:
    """Cluster-attached checkpoint/restore coordinator.

    Installed by ``run_caf(checkpoint_every=..., checkpoint_store=...,
    resume_from=...)``; images reach it through ``img.resilience``. It
    tracks every coarray/event allocation per image (allocation order is
    the restore key) and, when a resume checkpoint is set, transparently
    refills matching allocations as they are re-made — so a restarted
    program re-executes its allocation preamble and wakes up holding the
    checkpointed data.
    """

    def __init__(
        self,
        cluster: "Cluster",
        *,
        every: int | None = None,
        store: CheckpointStore | None = None,
        resume: Checkpoint | None = None,
    ):
        if every is not None and every <= 0:
            raise ResilienceError(f"checkpoint_every must be positive, got {every}")
        self.cluster = cluster
        self.every = every
        self.store = store if store is not None else CheckpointStore()
        self.resume = resume
        self._handles: dict[int, ImageResilience] = {}
        self._coarrays: dict[int, list["Coarray"]] = {}
        self._events: dict[int, list["EventArray"]] = {}
        #: Committed checkpoints this run (the resume one not included).
        self.taken = 0

    def image_handle(self, img: "Image") -> "ImageResilience":
        handle = self._handles.get(img.rank)
        if handle is None:
            handle = self._handles[img.rank] = ImageResilience(self, img)
        return handle

    # -- allocation registry + transparent restore -------------------------

    def register_coarray(self, img: "Image", co: "Coarray") -> None:
        lst = self._coarrays.setdefault(img.rank, [])
        index = len(lst)
        lst.append(co)
        ckpt = self.resume
        if ckpt is None or img.rank not in ckpt.coarrays:
            return
        saved = ckpt.coarrays[img.rank]
        if index < len(saved) and saved[index].size == co.nelems:
            co.local.reshape(-1)[:] = np.asarray(
                saved[index], co.dtype
            ).reshape(-1)

    def register_events(self, img: "Image", ev: "EventArray") -> None:
        lst = self._events.setdefault(img.rank, [])
        index = len(lst)
        lst.append(ev)
        ckpt = self.resume
        if ckpt is None or img.rank not in ckpt.events:
            return
        saved = ckpt.events[img.rank]
        if index < len(saved) and len(saved[index]) == ev.nslots:
            for slot, count in enumerate(saved[index]):
                have = ev.img.backend.event_count(ev.storage, slot)
                delta = int(count) - have
                if delta > 0:
                    for _ in range(delta):
                        ev.storage.post(slot)
                elif delta < 0:  # pragma: no cover - defensive
                    ev.img.backend.event_consume(ev.storage, slot, -delta)

    # -- snapshot ----------------------------------------------------------

    def _snapshot_rank(self, rank: int) -> tuple[list, list]:
        coarrays = [co.local.reshape(-1).copy() for co in self._coarrays.get(rank, [])]
        events = []
        for ev in self._events.get(rank, []):
            events.append(
                [ev.img.backend.event_count(ev.storage, s) for s in range(ev.nslots)]
            )
        return coarrays, events


class ImageResilience:
    """Per-image facade of the :class:`ResilienceService`."""

    def __init__(self, service: ResilienceService, img: "Image"):
        self.service = service
        self.img = img
        # A restarted run resumes the global iteration count, so the
        # checkpoint cadence stays aligned across restarts.
        self._step = 0 if service.resume is None else service.resume.step
        self._agree_seq: dict[int, int] = {}

    # -- resume-side queries ----------------------------------------------

    @property
    def resumed(self) -> Checkpoint | None:
        """The checkpoint this run was restarted from (None on a cold start)."""
        return self.service.resume

    def resume_step(self) -> int:
        """Loop index to restart from (0 on a cold start)."""
        ckpt = self.service.resume
        return 0 if ckpt is None else ckpt.step

    def resume_state(self, default: Any = None) -> Any:
        """This image's app-state blob from the resume checkpoint."""
        ckpt = self.service.resume
        if ckpt is None:
            return default
        return ckpt.app_state.get(self.img.rank, default)

    def latest(self) -> Checkpoint | None:
        """Most recent committed checkpoint (resume or this run's)."""
        return self.service.store.latest() or self.service.resume

    def coarray_index(self, co: "Coarray") -> int:
        """Allocation index of ``co`` — its restore key in checkpoints."""
        return self.service._coarrays[self.img.rank].index(co)

    # -- checkpoint-side --------------------------------------------------

    def step(self, state: Any = None, team: "Team | None" = None) -> bool:
        """Advance the iteration counter; checkpoint on the configured cadence.

        Collective: every image of ``team`` must call once per iteration
        with an identical schedule. Returns True when this call committed
        a checkpoint.
        """
        self._step += 1
        every = self.service.every
        if every is None or self._step % every != 0:
            return False
        self.checkpoint(state, team=team)
        return True

    def checkpoint(self, state: Any = None, team: "Team | None" = None) -> Checkpoint:
        """Cut one coordinated checkpoint over ``team`` (collective).

        Quiesces first — outstanding puts/sends/event posts drain through
        ``backend.quiet()`` and a team barrier — then snapshots and
        commits through the board agreement, so the artifact is globally
        consistent by construction.
        """
        img = self.img
        service = self.service
        team = team or img.team_world
        with img.profile("checkpoint"):
            img.backend.quiet()
            img.barrier(team)
            my_world = team.world_rank(team.my_index)
            coarrays, events = service._snapshot_rank(my_world)
            step = self._step

            def commit(args: dict[int, Any]) -> Checkpoint:
                ckpt = Checkpoint(
                    step=step,
                    time=img.ctx.engine.now,
                    nranks=img.nranks,
                    members=tuple(team.members),
                )
                for idx, (cos, evs, app) in args.items():
                    w = team.world_rank(idx)
                    ckpt.coarrays[w] = cos
                    ckpt.events[w] = evs
                    if app is not None:
                        ckpt.app_state[w] = app
                service.store.save(ckpt)
                service.taken += 1
                return ckpt

            return collective_agree(
                img.backend,
                img.cluster,
                team,
                "resilience-checkpoint",
                self._agree_seq,
                (coarrays, events, state),
                commit,
            )

    # -- recovery-side ----------------------------------------------------

    def recover_shrink(
        self, team: "Team | None" = None, *, require_checkpoint: bool = True
    ) -> tuple["Team", Checkpoint | None]:
        """Survivor-side shrink recovery: agree on the dead set, rebuild.

        Every surviving image of ``team`` calls this after observing a
        failure (an :class:`~repro.util.errors.ImageFailedError`, an event
        timeout, ...). Returns the shrunken team plus the last committed
        checkpoint to repartition from. With ``require_checkpoint=False``
        a crash that predates the first checkpoint yields ``(team, None)``
        and the caller cold-restarts on the shrunken team instead.
        """
        img = self.img
        ckpt = self.latest()
        if ckpt is None and require_checkpoint:
            raise ResilienceError(
                "shrink recovery needs a committed checkpoint to restore from"
            )
        small = img.shrink_team(team)
        return small, ckpt
