"""repro: a full-system reproduction of "Portable, MPI-Interoperable
Coarray Fortran" (PPoPP 2014).

Layers (bottom-up):

* :mod:`repro.sim` — deterministic discrete-event simulated cluster.
* :mod:`repro.mpi` — MPI-3 subset (p2p, collectives incl. nonblocking,
  RMA windows with passive-target sync and one-sided atomics).
* :mod:`repro.gasnet` — GASNet subset (segments, Active Messages,
  RDMA put/get, SRQ behaviour).
* :mod:`repro.caf` — the CAF 2.0 runtime (the paper's subject) with the
  CAF-MPI (§3) and CAF-GASNet backends.
* :mod:`repro.apps` — RandomAccess, FFT, HPL, CGPOP, microbenchmarks,
  distributed arrays.
* :mod:`repro.platforms` — Fusion / Edison / Mira machine models.
* :mod:`repro.experiments` — regenerators for every table and figure.

Quick start::

    from repro.caf import run_caf

    def hello(img):
        co = img.allocate_coarray(4)
        co.local[:] = img.rank
        img.sync_all()
        return float(co.read((img.rank + 1) % img.nranks)[0])

    print(run_caf(hello, nranks=4).results)
"""

from repro.caf import run_caf
from repro.platforms import EDISON, FUSION, LAPTOP, MIRA, PLATFORMS
from repro.sim.network import MachineSpec

__version__ = "1.0.0"

__all__ = [
    "EDISON",
    "FUSION",
    "LAPTOP",
    "MIRA",
    "MachineSpec",
    "PLATFORMS",
    "__version__",
    "run_caf",
]
