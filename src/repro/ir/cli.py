"""CLI for the trace IR: ``python -m repro.ir {record,replay,sweep,validate}``.

Usage::

    python -m repro.ir record --out traces/ra randomaccess --procs 8
    python -m repro.ir replay --trace traces/ra --platform edison
    python -m repro.ir replay --trace traces/ra --set latency=5e-6 --out ra.json
    python -m repro.ir sweep --trace traces/ra --vary latency=1e-6,2e-6,4e-6 \\
        --vary bandwidth=5e9,1e10 --out sweeps/ra
    python -m repro.ir validate traces/ra traces/fft
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.ir import record as ir_record
from repro.ir.replay import ReplayError, replay, validate_trace
from repro.ir.sweep import SweepPoint, grid_points, run_sweep
from repro.ir.trace import Trace, TraceError, TraceVersionError
from repro.platforms import PLATFORMS


def _parse_value(text: str):
    """``--set``/``--vary`` value: JSON scalar, falling back to a string."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _overrides(pairs: list[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected FIELD=VALUE, got {pair!r}")
        key, _, val = pair.partition("=")
        out[key] = _parse_value(val)
    return out


def _target_spec(trace: Trace, platform: str | None, sets: list[str]):
    spec = PLATFORMS[platform] if platform else trace.recorded_spec()
    overrides = _overrides(sets)
    if overrides:
        name = spec.name + "+" + ",".join(sorted(overrides))
        spec = spec.with_overrides(name=name, **overrides)
    return spec


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.apps.__main__ import main as apps_main

    return apps_main(list(args.app_args) + ["--record-ir", str(args.out)])


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    spec = _target_spec(trace, args.platform, args.set or [])
    result = replay(trace, spec)
    recorded = trace.manifest.get("makespan")
    print(
        f"{trace.manifest.get('app', '?')} x{trace.nranks} "
        f"({trace.manifest.get('backend', '?')}): replayed on {spec.name}"
    )
    print(f"  recorded makespan: {recorded!r}")
    print(f"  replayed makespan: {result.makespan!r}")
    for warning in result.warnings:
        print(f"  warning: {warning}")
    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"  report -> {args.out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    vary = {}
    for pair in args.vary:
        if "=" not in pair:
            raise SystemExit(f"expected FIELD=V1,V2,..., got {pair!r}")
        key, _, vals = pair.partition("=")
        vary[key] = [_parse_value(v) for v in vals.split(",")]
    base = PLATFORMS[args.platform] if args.platform else trace.recorded_spec()
    points = grid_points(vary) if vary else [SweepPoint(name=base.name)]
    outcome = run_sweep(trace, points, base_spec=base, out_dir=args.out)
    print(
        f"swept {len(points)} point(s) over {trace.manifest.get('app', '?')} "
        f"x{trace.nranks} (base {base.name})"
    )
    for row in outcome.summary["points"]:
        print(f"  {row['name'] or base.name}: makespan {row['makespan']!r}")
    if args.out:
        print(f"  artifacts -> {args.out}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    failed = 0
    for path in args.traces:
        try:
            trace = Trace.load(path)
        except (TraceError, TraceVersionError) as exc:
            print(f"{path}: FAIL ({exc})")
            failed += 1
            continue
        try:
            problems = validate_trace(trace)
        except ReplayError as exc:
            problems = [str(exc)]
        if problems:
            failed += 1
            print(f"{path}: FAIL")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(
                f"{path}: OK ({trace.nops} ops, {trace.nchains} chains, "
                f"makespan {trace.manifest.get('makespan')!r} reproduced)"
            )
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ir",
        description="Record, replay, and sweep op-stream traces.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_record = sub.add_parser("record", help="run an app and record its trace")
    p_record.add_argument("--out", required=True, help="trace artifact stem")
    p_record.add_argument(
        "app_args", nargs=argparse.REMAINDER,
        help="arguments for python -m repro.apps (app name first)",
    )
    p_record.set_defaults(func=_cmd_record)

    p_replay = sub.add_parser("replay", help="re-price a trace under a spec")
    p_replay.add_argument("--trace", required=True, help="trace artifact stem")
    p_replay.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    p_replay.add_argument(
        "--set", action="append", metavar="FIELD=VALUE",
        help="override a MachineSpec field (repeatable)",
    )
    p_replay.add_argument("--out", default=None, help="write the replay report JSON")
    p_replay.set_defaults(func=_cmd_replay)

    p_sweep = sub.add_parser("sweep", help="replay a trace over a parameter grid")
    p_sweep.add_argument("--trace", required=True, help="trace artifact stem")
    p_sweep.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    p_sweep.add_argument(
        "--vary", action="append", default=[], metavar="FIELD=V1,V2,...",
        help="sweep a MachineSpec field over values (repeatable; grid product)",
    )
    p_sweep.add_argument("--out", default=None, help="directory for sweep artifacts")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_validate = sub.add_parser(
        "validate", help="check artifacts and reproduce their recorded makespans"
    )
    p_validate.add_argument("traces", nargs="+", help="trace artifact stems")
    p_validate.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
