"""Entry point: ``python -m repro.ir``."""

import sys

from repro.ir.cli import main

sys.exit(main())
