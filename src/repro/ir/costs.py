"""Vectorized cost evaluation: symbolized sleep costs and obs re-pricing.

Replay never re-executes the runtime layers; it re-evaluates the cost
expressions they *would* have evaluated, in the same IEEE-float operation
order, against the target spec. Annotated ops use the CK_* expression
recorded at the call site; unannotated ops (CK_LIT) replay their recorded
duration verbatim — exact at the recorded spec by construction.
"""

from __future__ import annotations

import numpy as np

from repro.sim import irhook as _ck
from repro.sim.network import MachineSpec

#: Spec fields whose value changes the *communication pattern*, not just
#: its cost. A trace records the pattern under the recorded spec; replay
#: under a target that disagrees on these is an approximation and gets a
#: warning (docs/ir.md spells out the validity model).
STRUCTURE_FIELDS = (
    "mpi_eager_threshold",
    "mpi_rma_over_sendrecv",
    "mpi_async_progress",
    "gasnet_srq_threshold",
    "gasnet_am_credits",
    "gasnet_coll_signal",
)


def structure_warnings(recorded: MachineSpec, target: MachineSpec, nranks: int) -> list[str]:
    out = []
    for f in STRUCTURE_FIELDS:
        rv, tv = getattr(recorded, f), getattr(target, f)
        if rv != tv:
            out.append(
                f"structure parameter {f} differs (recorded {rv!r}, target "
                f"{tv!r}): the recorded communication pattern is kept"
            )
    if recorded.srq_active(nranks) != target.srq_active(nranks):
        out.append(
            "SRQ active/inactive differs between recorded and target spec: "
            "recorded delivery-path structure is kept"
        )
    return out


def field_vector(spec: MachineSpec) -> np.ndarray:
    return np.array([getattr(spec, f) for f in _ck.COST_FIELDS], dtype=np.float64)


def eval_costs(
    ck: np.ndarray,
    c0: np.ndarray,
    c1: np.ndarray,
    c2: np.ndarray,
    recorded: np.ndarray,
    spec: MachineSpec,
    nranks: int,
) -> np.ndarray:
    """Evaluate every op's cost expression under ``spec`` (one pass per kind).

    Element order inside each expression mirrors the live call sites, so
    at the recorded spec the result equals the recorded duration bit-for-bit
    for every correctly annotated site (``validate`` cross-checks this).
    """
    fv = field_vector(spec)
    out = recorded.astype(np.float64, copy=True)  # CK_LIT default

    def sel(kind):
        return np.nonzero(ck == kind)[0]

    idx = sel(_ck.CK_PARAM)
    if idx.size:
        out[idx] = fv[c0[idx].astype(np.int64)]
    idx = sel(_ck.CK_PARAM2)
    if idx.size:
        out[idx] = fv[c0[idx].astype(np.int64)] + fv[c1[idx].astype(np.int64)]
    idx = sel(_ck.CK_COPY)
    if idx.size:
        out[idx] = c0[idx] / spec.mem_copy_bw
    idx = sel(_ck.CK_PARAM_COPY)
    if idx.size:
        out[idx] = fv[c0[idx].astype(np.int64)] + c1[idx] / spec.mem_copy_bw
    idx = sel(_ck.CK_PARAM2_COPY)
    if idx.size:
        out[idx] = (
            fv[c0[idx].astype(np.int64)] + fv[c1[idx].astype(np.int64)]
        ) + c2[idx] / spec.mem_copy_bw
    idx = sel(_ck.CK_FLOPS)
    if idx.size:
        out[idx] = c0[idx] / spec.flops_per_sec
    idx = sel(_ck.CK_MUL)
    if idx.size:
        out[idx] = c1[idx] * fv[c0[idx].astype(np.int64)]
    idx = sel(_ck.CK_ACK)
    if idx.size:
        same = (c0[idx].astype(np.int64) // spec.ranks_per_node) == (
            c1[idx].astype(np.int64) // spec.ranks_per_node
        )
        out[idx] = np.where(same, spec.loopback_latency, spec.latency)
    idx = sel(_ck.CK_HANDLER)
    if idx.size:
        cost = spec.gasnet_handler_overhead
        if spec.srq_active(nranks):
            cost = spec.gasnet_handler_overhead + spec.gasnet_srq_penalty
        out[idx] = cost
    return out


# -- obs (per-op totals) re-pricing ---------------------------------------
#
# The obs side table records (rank, kind, nbytes, seconds) per completed
# op. At the recorded spec the recorded seconds are authoritative. Under a
# different spec, kinds with a known closed-form origin cost are
# re-evaluated below (branching on the *recorded* spec's structure
# parameters — the pattern is frozen); span-measured kinds (flush waits,
# CAF-level spans, collectives) keep their recorded values and are listed
# in the result's warnings.


def obs_formula(
    kind: str,
    nbytes: np.ndarray,
    target: MachineSpec,
    recorded: MachineSpec,
    nranks: int,
) -> np.ndarray | None:
    """Re-priced per-call seconds for ``kind``, or None (no closed form)."""
    nb = nbytes.astype(np.float64)
    if kind == "mpi.send":
        eager = nbytes <= recorded.mpi_eager_threshold
        return np.where(
            eager,
            target.mpi_p2p_overhead + nb / target.mem_copy_bw,
            np.float64(target.mpi_p2p_overhead),
        )
    if kind == "mpi.recv":
        return np.full(nb.shape, target.mpi_p2p_overhead)
    if kind in ("mpi.put", "mpi.rput", "mpi.get", "mpi.rget"):
        return np.full(nb.shape, _origin(target, recorded, target.mpi_rma_overhead))
    if kind in (
        "mpi.accumulate",
        "mpi.raccumulate",
        "mpi.get_accumulate",
        "mpi.fetch_and_op",
        "mpi.cas",
    ):
        return np.full(nb.shape, _origin(target, recorded, target.mpi_atomic_overhead))
    if kind == "mpi.put_runs":
        return _origin(target, recorded, target.mpi_rma_overhead) + nb / target.mem_copy_bw
    if kind == "mpi.get_runs":
        return np.full(nb.shape, _origin(target, recorded, target.mpi_rma_overhead))
    if kind in ("mpi.rflush", "mpi.lock", "mpi.lock_all", "mpi.unlock", "mpi.unlock_all"):
        return np.full(nb.shape, target.mpi_flush_overhead)
    if kind == "mpi.rflush_all":
        return np.full(nb.shape, target.mpi_flush_all_idle)
    if kind == "gasnet.am":
        return np.full(nb.shape, target.gasnet_am_overhead)
    if kind == "gasnet.put":
        return np.full(nb.shape, target.gasnet_put_overhead)
    if kind == "gasnet.get":
        return np.full(nb.shape, target.gasnet_get_overhead)
    if kind == "gasnet.put_runs":
        return target.gasnet_put_overhead + nb / target.mem_copy_bw
    if kind == "gasnet.get_runs":
        return np.full(nb.shape, target.gasnet_get_overhead)
    return None


def _origin(target: MachineSpec, recorded: MachineSpec, base: float) -> float:
    # Branch on the recorded structure (sendrecv-backed RMA or not), price
    # with the target's fields — mirrors Window._origin_overhead.
    if recorded.mpi_rma_over_sendrecv:
        return base + target.mpi_sendrecv_rma_extra
    return base


# -- static (pre-run) pricing ---------------------------------------------
#
# The lint stream compiler predicts op streams before any run, so there is
# no recorded baseline to branch on: the spec being priced *is* the
# structure. Kinds with a closed-form origin cost reuse obs_formula with
# recorded == target; CAF-level and collective kinds (span-measured at
# runtime) get simple first-order models — a log2(P) tree for collectives,
# initiation + wire cost for one-sided traffic. These are coarse by
# design: the estimator's validated quantities are call counts and bytes,
# with seconds reported as an order-of-magnitude preview.


def static_op_seconds(
    kind: str, nbytes: np.ndarray, spec: MachineSpec, nranks: int
) -> np.ndarray:
    """Predicted per-call seconds for a *statically compiled* op stream."""
    nb = np.asarray(nbytes, dtype=np.float64)
    known = obs_formula(kind, np.asarray(nbytes), spec, spec, nranks)
    if known is not None:
        return known
    wire = spec.latency + nb / spec.bandwidth
    if kind.startswith("caf.coll.") or kind.startswith("mpi.coll."):
        rounds = max(np.log2(max(nranks, 2)), 1.0)
        return spec.mpi_coll_overhead + rounds * wire
    if kind in ("caf.coarray_write", "caf.async_write", "caf.async_copy"):
        return spec.mpi_rma_overhead + nb / spec.bandwidth
    if kind in ("caf.coarray_read", "caf.async_read"):
        return spec.mpi_rma_overhead + 2 * spec.latency + nb / spec.bandwidth
    if kind in ("caf.event_notify",):
        return np.full(nb.shape, spec.mpi_rma_overhead + spec.latency)
    if kind in ("caf.event_wait", "caf.event_trywait"):
        return np.full(nb.shape, spec.mpi_match_overhead)
    if kind == "mpi.win.flush_all":
        # MPICH-style FLUSH_ALL walks every rank in the window's group —
        # the paper's Fig. 4 O(P) scaling cliff.
        return np.full(nb.shape, spec.mpi_flush_all_idle
                       + nranks * spec.mpi_flush_all_per_target)
    if kind.startswith("mpi.win."):
        return np.full(nb.shape, spec.mpi_flush_overhead)
    if kind in ("caf.finish", "caf.cofence", "caf.serve", "caf.spawn"):
        return np.full(nb.shape, spec.mpi_coll_overhead)
    return wire if wire.shape else np.full((), float(wire))
