"""On-disk trace artifact: columnar op stream + JSON manifest.

A trace is two files sharing a stem: ``<stem>.npz`` (the numpy columns)
and ``<stem>.json`` (the manifest). Both are deterministic — same program,
same seed, same spec, either dispatcher, either substrate produce
byte-identical manifests and equal arrays — and versioned: loading an
artifact written by a different format version raises
:class:`TraceVersionError` instead of misreading it.

Column layout (all arrays share length = op count, indexed by ``gseq``):

=========  ======  ====================================================
column     dtype   meaning (per op kind; see :mod:`repro.ir.ops`)
=========  ======  ====================================================
kind       u8      op kind
chain      u32     owning chain id
ck         u8      cost kind (SLEEP/CALL; 0 elsewhere)
a          i64     event/counter/channel id; XFER ``src*nranks+dst``;
                   CALL child chain
b          i64     threshold / amount / put seq; XFER child chain
c          i64     XFER nbytes
c0,c1,c2   f64     cost args (SLEEP/CALL); XFER: c0 = SRQ-rx flag
d          f64     recorded duration / delay / delivery time
=========  ======  ====================================================

Chains table: ``chain_kind`` (u8), ``chain_daemon`` (u8), ``chain_rank``
(i32, -1 for non-rank chains), ``chain_start`` (f64, absolute start for
proc/external chains; CB chains start when their parent op delivers).

Obs table (per ``Metrics.record`` call, in record order): ``obs_rank``
(i32), ``obs_kind`` (i32, index into ``manifest["obs_kinds"]``),
``obs_nbytes`` (i64), ``obs_seconds`` (f64).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.ir import ops as _ops

TRACE_VERSION = 1


class TraceVersionError(Exception):
    """The artifact was written by an incompatible trace-format version."""


class TraceError(Exception):
    """Malformed or unloadable trace artifact."""


OP_COLUMNS = ("kind", "chain", "ck", "a", "b", "c", "c0", "c1", "c2", "d")
CHAIN_COLUMNS = ("chain_kind", "chain_daemon", "chain_rank", "chain_start")
OBS_COLUMNS = ("obs_rank", "obs_kind", "obs_nbytes", "obs_seconds")


def _stem(path: str | pathlib.Path) -> pathlib.Path:
    p = pathlib.Path(path)
    return p.with_suffix("") if p.suffix in (".npz", ".json") else p


@dataclass
class Trace:
    """A recorded op-stream trace plus its manifest."""

    manifest: dict[str, Any]
    arrays: dict[str, np.ndarray] = field(default_factory=dict)

    # -- convenience accessors ------------------------------------------

    @property
    def nops(self) -> int:
        return int(self.arrays["kind"].shape[0])

    @property
    def nchains(self) -> int:
        return int(self.arrays["chain_kind"].shape[0])

    @property
    def nranks(self) -> int:
        return int(self.manifest["nranks"])

    def recorded_spec(self):
        from repro.sim.network import MachineSpec

        return MachineSpec(**self.manifest["spec"])

    def iter_ops(self) -> Iterator[_ops.IrOp]:
        """Typed dataclass view over the columnar storage (analysis/CLI)."""
        a = self.arrays
        kind, chain = a["kind"], a["chain"]
        ck, ai, bi, ci = a["ck"], a["a"], a["b"], a["c"]
        c0, c1, c2, d = a["c0"], a["c1"], a["c2"], a["d"]
        nranks = self.nranks
        for i in range(self.nops):
            k, ch = int(kind[i]), int(chain[i])
            if k == _ops.OP_SLEEP:
                yield _ops.SleepOp(
                    i, ch, int(ck[i]), (float(c0[i]), float(c1[i]), float(c2[i])),
                    float(d[i]),
                )
            elif k == _ops.OP_CALL:
                yield _ops.CallOp(
                    i, ch, int(ai[i]), int(ck[i]),
                    (float(c0[i]), float(c1[i]), float(c2[i])), float(d[i]),
                )
            elif k == _ops.OP_XFER:
                pair = int(ai[i])
                yield _ops.TransferOp(
                    i, ch, pair // nranks, pair % nranks, int(ci[i]),
                    bool(c0[i]), int(bi[i]), float(d[i]),
                )
            elif k == _ops.OP_FIRE:
                yield _ops.EventFireOp(i, ch, int(ai[i]))
            elif k == _ops.OP_WAITEV:
                yield _ops.EventWaitOp(i, ch, int(ai[i]))
            elif k == _ops.OP_ADD:
                yield _ops.CounterAddOp(i, ch, int(ai[i]), int(bi[i]))
            elif k == _ops.OP_WAITGE:
                yield _ops.CounterWaitOp(i, ch, int(ai[i]), int(bi[i]))
            elif k == _ops.OP_TAKE:
                yield _ops.CounterTakeOp(i, ch, int(ai[i]), int(bi[i]))
            elif k == _ops.OP_PUT:
                yield _ops.ChannelPutOp(i, ch, int(ai[i]), int(bi[i]))
            elif k == _ops.OP_CHGET:
                yield _ops.ChannelGetOp(i, ch, int(ai[i]), int(bi[i]))
            else:  # pragma: no cover - format invariant
                raise TraceError(f"unknown op kind {k} at gseq {i}")

    # -- validation ------------------------------------------------------

    def check_structure(self) -> None:
        """Cheap structural invariants (CLI ``validate`` runs this)."""
        a = self.arrays
        for col in OP_COLUMNS + CHAIN_COLUMNS + OBS_COLUMNS:
            if col not in a:
                raise TraceError(f"missing column {col!r}")
        n = self.nops
        for col in OP_COLUMNS:
            if a[col].shape[0] != n:
                raise TraceError(f"column {col!r} length mismatch")
        nchains = self.nchains
        if n and int(a["chain"].max(initial=0)) >= nchains:
            raise TraceError("op references out-of-range chain")
        for k in (_ops.OP_CALL, _ops.OP_XFER):
            sel = a["kind"] == k
            child = (a["a"] if k == _ops.OP_CALL else a["b"])[sel]
            if child.size and (child.min() < 0 or child.max() >= nchains):
                raise TraceError("op references out-of-range child chain")
        if self.manifest.get("nops") != n:
            raise TraceError("manifest op count disagrees with arrays")

    # -- persistence -----------------------------------------------------

    def save(self, path: str | pathlib.Path) -> tuple[pathlib.Path, pathlib.Path]:
        """Write ``<stem>.npz`` + ``<stem>.json``; returns both paths."""
        stem = _stem(path)
        stem.parent.mkdir(parents=True, exist_ok=True)
        npz_path = stem.with_suffix(".npz")
        json_path = stem.with_suffix(".json")
        np.savez_compressed(npz_path, **self.arrays)
        json_path.write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True) + "\n"
        )
        return npz_path, json_path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Trace":
        stem = _stem(path)
        npz_path = stem.with_suffix(".npz")
        json_path = stem.with_suffix(".json")
        if not json_path.exists():
            raise TraceError(f"missing manifest {json_path}")
        if not npz_path.exists():
            raise TraceError(f"missing array file {npz_path}")
        try:
            manifest = json.loads(json_path.read_text())
        except ValueError as exc:
            raise TraceError(f"unreadable manifest {json_path}: {exc}") from exc
        version = manifest.get("ir_version")
        if version != TRACE_VERSION:
            raise TraceVersionError(
                f"{json_path}: trace format version {version!r}, "
                f"this build reads version {TRACE_VERSION}"
            )
        with np.load(npz_path) as data:
            arrays = {name: data[name] for name in data.files}
        trace = cls(manifest=manifest, arrays=arrays)
        trace.check_structure()
        return trace
