"""Record one instrumented ``run_caf`` into a replayable op-stream trace.

The :class:`Recorder` receives every hook callback declared in
:mod:`repro.sim.irhook` and appends columnar op rows in global record
order (``gseq`` — which, because the engine is deterministic, *is* live
execution order; that invariant is what lets replay re-resolve same-time
races exactly). Module-level :func:`start` / :func:`stop` /
:func:`active` mirror :mod:`repro.obs.capture`: while a recording is
active, ``run_caf`` attaches a recorder to every cluster it builds and
emits one trace artifact per successful run.

Recording refuses fault plans, reliable transport, and crash schedules:
those change the communication *pattern* mid-run, and a trace is a frozen
pattern (replay can re-price a drop-free delay FaultPlan, but recording
under one would bake retransmissions into the stream).
"""

from __future__ import annotations

import contextlib
import os
import pathlib
from collections import deque
from typing import Any

import numpy as np

from repro.sim import irhook as _irhook
from repro.ir import ops as _ops
from repro.ir.trace import TRACE_VERSION, Trace


class RecordError(Exception):
    """Recording attached to an unsupported run configuration."""


class Recorder:
    """Accumulates the op stream of one cluster run."""

    def __init__(self, cluster, *, backend: str = "", app: str = ""):
        if cluster.faults is not None:
            raise RecordError(
                "cannot record under a FaultPlan: faults change the "
                "communication pattern; record fault-free and replay with a "
                "drop-free delay plan instead"
            )
        if cluster.fabric.reliable is not None:
            raise RecordError("cannot record with the reliable transport armed")
        self.cluster = cluster
        self.engine = cluster.engine
        self.nranks = cluster.nranks
        self.backend = backend
        self.app = app
        #: Pending cost annotation, set by irhook.annotate() and consumed by
        #: the next sleep / call_at hook.
        self.pending_cost: tuple[float, float, float, float] | None = None
        #: Chain id of the callback currently executing (CbThunk sets it).
        self.current_cb: int | None = None
        #: Raw delay of an in-flight ``call_in`` (set by Engine.call_in;
        #: bit-exact where ``when - now`` is not).
        self.pending_delay: float | None = None
        # Columnar op storage (python lists; converted to arrays at finalize).
        self._kind: list[int] = []
        self._chain: list[int] = []
        self._ck: list[int] = []
        self._a: list[int] = []
        self._b: list[int] = []
        self._c: list[int] = []
        self._c0: list[float] = []
        self._c1: list[float] = []
        self._c2: list[float] = []
        self._d: list[float] = []
        # Chains.
        self._chain_kind: list[int] = []
        self._chain_daemon: list[int] = []
        self._chain_rank: list[int] = []
        self._chain_start: list[float] = []
        self._proc_chain: dict[int, int] = {}
        # Obs side table.
        self._obs_rank: list[int] = []
        self._obs_kind: list[int] = []
        self._obs_nbytes: list[int] = []
        self._obs_seconds: list[float] = []
        self._obs_kind_ids: dict[str, int] = {}
        # Sync-object ids and channel put sequencing.
        self._next_oid = 0
        self._chan_seq: dict[int, int] = {}
        # (channel id, id(item)) -> deque of (item ref pin, put seq).
        self._chan_items: dict[tuple[int, int], deque] = {}

    # -- context resolution ----------------------------------------------

    def _new_chain(self, kind: int, daemon: bool, rank: int, start: float) -> int:
        cid = len(self._chain_kind)
        self._chain_kind.append(kind)
        self._chain_daemon.append(1 if daemon else 0)
        self._chain_rank.append(rank)
        self._chain_start.append(start)
        return cid

    def _ctx(self) -> int:
        proc = self.engine._current
        if proc is not None:
            cid = self._proc_chain.get(proc.pid)
            if cid is None:
                rank = proc.pid if proc.pid < self.nranks else -1
                cid = self._new_chain(
                    _ops.CHAIN_PROC, proc.daemon, rank, self.engine.now
                )
                self._proc_chain[proc.pid] = cid
            return cid
        cid = self.current_cb
        if cid is None:
            raise RecordError("IR op recorded outside any execution context")
        return cid

    def _oid(self, obj) -> int:
        try:
            return obj._ir_id
        except AttributeError:
            oid = self._next_oid
            self._next_oid = oid + 1
            obj._ir_id = oid
            return oid

    def _append(
        self, kind: int, chain: int, ck: int, a: int, b: int, c: int,
        c0: float, c1: float, c2: float, d: float,
    ) -> None:
        self._kind.append(kind)
        self._chain.append(chain)
        self._ck.append(ck)
        self._a.append(a)
        self._b.append(b)
        self._c.append(c)
        self._c0.append(c0)
        self._c1.append(c1)
        self._c2.append(c2)
        self._d.append(d)

    def _consume_cost(self) -> tuple[int, float, float, float]:
        pc = self.pending_cost
        if pc is None:
            return (_irhook.CK_LIT, 0.0, 0.0, 0.0)
        self.pending_cost = None
        return (int(pc[0]), pc[1], pc[2], pc[3])

    # -- hook callbacks ---------------------------------------------------

    def on_sleep(self, duration: float) -> None:
        chain = self._ctx()
        ck, c0, c1, c2 = self._consume_cost()
        self._append(_ops.OP_SLEEP, chain, ck, 0, 0, 0, c0, c1, c2, duration)

    def on_call_at(self, delay: float, fn):
        raw = self.pending_delay
        if raw is not None:
            self.pending_delay = None
            delay = raw
        if isinstance(fn, _irhook.CbThunk):
            return fn  # a transfer delivery, already recorded and chained
        proc = self.engine._current
        if proc is None and self.current_cb is None:
            # Scheduled from outside any simulated context (e.g. a driver
            # priming the event queue before run): an external root chain
            # with an absolute start time; no CALL op to record.
            child = self._new_chain(
                _ops.CHAIN_EXTERNAL, True, -1, self.engine.now + delay
            )
            return _irhook.CbThunk(self, child, fn)
        chain = self._ctx()
        child = self._new_chain(_ops.CHAIN_CB, True, -1, 0.0)
        ck, c0, c1, c2 = self._consume_cost()
        self._append(_ops.OP_CALL, chain, ck, child, 0, 0, c0, c1, c2, delay)
        return _irhook.CbThunk(self, child, fn)

    def on_transfer(
        self, src: int, dst: int, nbytes: int, rx_extra: float,
        deliver: float, fn,
    ):
        chain = self._ctx()
        child = self._new_chain(_ops.CHAIN_CB, True, -1, 0.0)
        self._append(
            _ops.OP_XFER, chain, 0, src * self.nranks + dst, child, nbytes,
            1.0 if rx_extra > 0.0 else 0.0, 0.0, 0.0, deliver,
        )
        return _irhook.CbThunk(self, child, fn)

    def on_fire(self, event) -> None:
        self._append(
            _ops.OP_FIRE, self._ctx(), 0, self._oid(event), 0, 0, 0.0, 0.0, 0.0, 0.0
        )

    def on_wait_event(self, event) -> None:
        self._append(
            _ops.OP_WAITEV, self._ctx(), 0, self._oid(event), 0, 0, 0.0, 0.0, 0.0, 0.0
        )

    def on_add(self, counter, n: int) -> None:
        self._append(
            _ops.OP_ADD, self._ctx(), 0, self._oid(counter), n, 0, 0.0, 0.0, 0.0, 0.0
        )

    def on_wait_geq(self, counter, threshold: int) -> None:
        self._append(
            _ops.OP_WAITGE, self._ctx(), 0, self._oid(counter), threshold, 0,
            0.0, 0.0, 0.0, 0.0,
        )

    def on_take(self, counter, n: int) -> None:
        self._append(
            _ops.OP_TAKE, self._ctx(), 0, self._oid(counter), n, 0,
            0.0, 0.0, 0.0, 0.0,
        )

    def on_chan_put(self, channel, item) -> None:
        cid = self._oid(channel)
        seq = self._chan_seq.get(cid, 0)
        self._chan_seq[cid] = seq + 1
        self._chan_items.setdefault((cid, id(item)), deque()).append((item, seq))
        self._append(
            _ops.OP_PUT, self._ctx(), 0, cid, seq, 0, 0.0, 0.0, 0.0, 0.0
        )

    def on_chan_get(self, channel, item) -> None:
        cid = self._oid(channel)
        key = (cid, id(item))
        entry = self._chan_items.get(key)
        if entry:
            _, seq = entry.popleft()
            if not entry:
                del self._chan_items[key]
        else:  # item predates recording; replay treats it as always ready
            seq = -1
        self._append(
            _ops.OP_CHGET, self._ctx(), 0, cid, seq, 0, 0.0, 0.0, 0.0, 0.0
        )

    def on_obs(self, rank: int, kind: str, nbytes: int, seconds: float) -> None:
        kid = self._obs_kind_ids.get(kind)
        if kid is None:
            kid = self._obs_kind_ids[kind] = len(self._obs_kind_ids)
        self._obs_rank.append(rank)
        self._obs_kind.append(kid)
        self._obs_nbytes.append(nbytes)
        self._obs_seconds.append(seconds)

    # -- assembly ---------------------------------------------------------

    def finalize(self, *, makespan: float) -> Trace:
        import dataclasses

        spec = self.cluster.spec
        counts: dict[str, int] = {}
        for k in self._kind:
            name = _ops.OP_NAMES[k]
            counts[name] = counts.get(name, 0) + 1
        manifest: dict[str, Any] = {
            "ir_version": TRACE_VERSION,
            "app": self.app,
            "backend": self.backend,
            "nranks": self.nranks,
            "sim_seed": self.cluster.seed,
            "spec": dataclasses.asdict(spec),
            "dispatcher": "fastpath" if self.engine._fastpath else "legacy",
            "substrate": self.engine.substrate,
            "makespan": makespan,
            "nops": len(self._kind),
            "nchains": len(self._chain_kind),
            "op_counts": counts,
            "obs_kinds": list(self._obs_kind_ids),
            "cost_fields": list(_irhook.COST_FIELDS),
        }
        arrays = {
            "kind": np.asarray(self._kind, np.uint8),
            "chain": np.asarray(self._chain, np.uint32),
            "ck": np.asarray(self._ck, np.uint8),
            "a": np.asarray(self._a, np.int64),
            "b": np.asarray(self._b, np.int64),
            "c": np.asarray(self._c, np.int64),
            "c0": np.asarray(self._c0, np.float64),
            "c1": np.asarray(self._c1, np.float64),
            "c2": np.asarray(self._c2, np.float64),
            "d": np.asarray(self._d, np.float64),
            "chain_kind": np.asarray(self._chain_kind, np.uint8),
            "chain_daemon": np.asarray(self._chain_daemon, np.uint8),
            "chain_rank": np.asarray(self._chain_rank, np.int32),
            "chain_start": np.asarray(self._chain_start, np.float64),
            "obs_rank": np.asarray(self._obs_rank, np.int32),
            "obs_kind": np.asarray(self._obs_kind, np.int32),
            "obs_nbytes": np.asarray(self._obs_nbytes, np.int64),
            "obs_seconds": np.asarray(self._obs_seconds, np.float64),
        }
        return Trace(manifest=manifest, arrays=arrays)


# -- process-wide capture (the run_caf / CLI integration) ------------------

_state: dict[str, Any] = {"path": None, "seq": 0, "written": [], "last": None}


def start(path: str | os.PathLike) -> None:
    """Begin recording: subsequent ``run_caf`` calls emit trace artifacts.

    ``path`` ending in ``.npz``/``.json`` names a single artifact stem
    (one run); anything else is a directory receiving one
    ``run-NNNN[-app]`` artifact per run.
    """
    _state.update(path=pathlib.Path(path), seq=0, written=[], last=None)


def stop() -> list[pathlib.Path]:
    """End the recording; returns the artifact paths written.

    ``last_trace()`` keeps the final run's trace until the next
    :func:`start`."""
    written = list(_state["written"])
    _state.update(path=None, seq=0, written=[])
    return written


def active() -> bool:
    return _state["path"] is not None


def last_trace() -> Trace | None:
    """The most recently finalized :class:`Trace` of this recording."""
    return _state["last"]


@contextlib.contextmanager
def recording(path: str | os.PathLike):
    """Context-managed recording window; yields the output path."""
    start(path)
    try:
        yield pathlib.Path(path)
    finally:
        stop()


def attach(cluster, *, backend: str = "", app: str = "") -> Recorder:
    """Install a recorder on ``cluster`` (run_caf calls this when active)."""
    if _irhook.RECORDER is not None:
        raise RecordError("an IR recording is already attached")
    plan = getattr(cluster, "shard_plan", None)
    if plan is not None and plan.is_sharded:
        raise NotImplementedError(
            "repro.ir recording does not support REPRO_SIM_SHARDS>1: the "
            "sharded dispatcher does not thread events through the "
            "recorder's issuer chains, so the trace would be silently "
            "partial. Record with the sequential dispatcher (see "
            "docs/architecture.md, 'Parallel simulation model')."
        )
    rec = Recorder(cluster, backend=backend, app=app)
    _irhook.RECORDER = rec
    return rec


def abort() -> None:
    """Detach without writing (run_caf's failure path)."""
    _irhook.RECORDER = None


def emit(cluster, *, backend: str = "", app: str = "") -> Trace | None:
    """Finalize the attached recorder and write this run's artifact."""
    rec = _irhook.RECORDER
    _irhook.RECORDER = None
    if rec is None or rec.cluster is not cluster:
        return None
    trace = rec.finalize(makespan=cluster.elapsed)
    _state["last"] = trace
    out: pathlib.Path | None = _state["path"]
    if out is not None:
        if out.suffix in (".npz", ".json"):
            stem = out
        else:
            seq = _state["seq"]
            _state["seq"] = seq + 1
            label = f"run-{seq:04d}" + (f"-{app}" if app else "")
            stem = out / label
        _state["written"].extend(trace.save(stem))
    return trace
