"""Parameter sweeps over a recorded trace: compile once, re-price N times.

This is the subsystem's payoff: a 16-point MachineSpec sweep costs one
live run (to record) plus N vectorized replays, instead of N live
simulations. ``run_sweep`` compiles the trace once, replays every point,
and emits RunReport-style JSON artifacts (one per point plus a summary).
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.ir.replay import CompiledTrace, ReplayResult, replay
from repro.ir.trace import Trace
from repro.sim.network import MachineSpec


@dataclass(frozen=True)
class SweepPoint:
    """One sweep coordinate: named overrides applied to the base spec."""

    name: str
    overrides: dict[str, Any] = field(default_factory=dict)

    def resolve(self, base: MachineSpec) -> MachineSpec:
        if not self.overrides:
            return base
        return base.with_overrides(name=self.name, **self.overrides)


def grid_points(vary: dict[str, list[Any]]) -> list[SweepPoint]:
    """Cartesian product of ``{field: [values...]}`` as sweep points."""
    fields = sorted(vary)
    points = []
    for combo in itertools.product(*(vary[f] for f in fields)):
        overrides = dict(zip(fields, combo))
        name = ",".join(f"{f}={overrides[f]!r}" for f in fields)
        points.append(SweepPoint(name=name, overrides=overrides))
    return points


@dataclass
class SweepOutcome:
    """All per-point results plus the machine-readable summary."""

    results: list[tuple[SweepPoint, ReplayResult]]
    summary: dict[str, Any]
    written: list[pathlib.Path] = field(default_factory=list)


def run_sweep(
    trace: Trace | CompiledTrace,
    points: list[SweepPoint],
    *,
    base_spec: MachineSpec | None = None,
    out_dir: str | pathlib.Path | None = None,
) -> SweepOutcome:
    """Replay ``trace`` at every sweep point.

    ``base_spec`` defaults to the recorded spec; each point's overrides
    are applied on top of it. With ``out_dir``, writes
    ``point-NN.replay.json`` per point and a ``sweep-summary.json``.
    """
    compiled = trace if isinstance(trace, CompiledTrace) else CompiledTrace(trace)
    base = base_spec if base_spec is not None else compiled.recorded_spec
    results: list[tuple[SweepPoint, ReplayResult]] = []
    rows = []
    for point in points:
        res = replay(compiled, point.resolve(base))
        results.append((point, res))
        rows.append(
            {
                "name": point.name,
                "overrides": dict(point.overrides),
                "makespan": res.makespan,
                "warnings": list(res.warnings),
            }
        )
    manifest = compiled.trace.manifest
    summary = {
        "schema": "repro.ir.sweep/1",
        "app": manifest.get("app", ""),
        "backend": manifest.get("backend", ""),
        "nranks": compiled.nranks,
        "recorded_makespan": manifest.get("makespan"),
        "base_spec": base.name,
        "points": rows,
    }
    outcome = SweepOutcome(results=results, summary=summary)
    if out_dir is not None:
        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for idx, (point, res) in enumerate(results):
            path = out / f"point-{idx:02d}.replay.json"
            path.write_text(
                json.dumps(res.to_dict(), indent=2, sort_keys=True) + "\n"
            )
            outcome.written.append(path)
        summary_path = out / "sweep-summary.json"
        summary_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        outcome.written.append(summary_path)
    return outcome
