"""repro.ir — typed op-stream IR, recorded traces, and vectorized replay.

One instrumented ``run_caf`` is captured into a deterministic, versioned
on-disk trace (:mod:`repro.ir.record` / :mod:`repro.ir.trace`); the replay
engine (:mod:`repro.ir.replay`) re-prices that trace under a different
:class:`~repro.sim.network.MachineSpec` — no fibers, no per-event context
switches, numpy-vectorized cost evaluation — so parameter sweeps that
re-executed the full simulator per point become near-free
(:mod:`repro.ir.sweep`, ``python -m repro.ir``).

The op vocabulary (:mod:`repro.ir.ops`) is shared with ``repro.lint``'s
static op streams: one typed model for both static facts and dynamic
traces.
"""

from repro.ir.costs import obs_formula, static_op_seconds
from repro.ir.ops import (
    OP_NAMES,
    IrOp,
)
from repro.ir.trace import TRACE_VERSION, Trace, TraceVersionError
from repro.ir.replay import ReplayError, ReplayResult, replay, validate_trace
from repro.ir.sweep import SweepPoint, grid_points, run_sweep

__all__ = [
    "OP_NAMES",
    "IrOp",
    "obs_formula",
    "static_op_seconds",
    "TRACE_VERSION",
    "Trace",
    "TraceVersionError",
    "ReplayError",
    "ReplayResult",
    "replay",
    "validate_trace",
    "SweepPoint",
    "grid_points",
    "run_sweep",
]
