"""Re-price a recorded trace under a different MachineSpec — no fibers.

The replay engine is a lean event merge over *compiled chains*: each
execution context's ops are walked in program order with a chain-local
clock, and only scheduling points (transfers, event/counter/channel ops,
scheduled callbacks) enter a single ``(time, gseq)`` heap. Costs are
evaluated once per target spec as vectorized numpy expressions
(:mod:`repro.ir.costs`); the walk then applies them with the same
sequential IEEE additions the live engine performs, which is what makes
replayed makespans *bit-identical* to live runs at the recorded spec.

Same-time races (contended ``Counter.take``, wake ordering) re-resolve
through the heap's ``gseq`` tie-break: ``gseq`` is live execution order,
and wait ops are recorded at completion, so at the recorded spec the
replayed resolution *is* the live resolution. Under a different spec the
tie-break is a deterministic stand-in and structural choices (eager vs
rendezvous, SRQ, poll-loop iteration counts) stay frozen as recorded —
``docs/ir.md`` spells out the validity model.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ir import ops as _ops
from repro.ir.costs import eval_costs, obs_formula, structure_warnings
from repro.ir.trace import Trace
from repro.sim.network import MachineSpec


class ReplayError(Exception):
    """The trace cannot be replayed under the requested conditions."""


@dataclass
class ReplayResult:
    """Outcome of one re-priced replay."""

    makespan: float
    spec_name: str
    nranks: int
    backend: str
    app: str
    #: op kind -> {"calls", "bytes", "time"} aggregated over ranks.
    op_totals: dict[str, dict[str, Any]]
    #: per-rank op kind -> {"calls", "bytes", "time"}.
    per_rank: list[dict[str, dict[str, Any]]]
    comm_messages: np.ndarray
    comm_bytes: np.ndarray
    warnings: list[str] = field(default_factory=list)
    #: transfers whose recomputed delivery time differed from the recorded
    #: one (populated by validation replays at the recorded spec).
    deliver_mismatches: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.ir.replay/1",
            "app": self.app,
            "backend": self.backend,
            "nranks": self.nranks,
            "spec_name": self.spec_name,
            "makespan": self.makespan,
            "op_totals": {
                k: dict(v) for k, v in sorted(self.op_totals.items())
            },
            "per_rank": [
                {k: dict(v) for k, v in sorted(pr.items())} for pr in self.per_rank
            ],
            "comm": {
                "messages": self.comm_messages.tolist(),
                "bytes": self.comm_bytes.tolist(),
            },
            "warnings": list(self.warnings),
            "deliver_mismatches": self.deliver_mismatches,
        }


class CompiledTrace:
    """Spec-independent replay structure: per-chain op lists + raw columns.

    Compile once, replay under many specs (the sweep path's win).
    """

    def __init__(self, trace: Trace):
        self.trace = trace
        a = trace.arrays
        self.nranks = trace.nranks
        self.kind = a["kind"].tolist()
        self.a = a["a"].tolist()
        self.b = a["b"].tolist()
        self.c = a["c"].tolist()
        self.c0 = a["c0"].tolist()
        self.d = a["d"].tolist()
        self.chain_kind = a["chain_kind"].tolist()
        self.chain_daemon = a["chain_daemon"].tolist()
        self.chain_rank = a["chain_rank"].tolist()
        self.chain_start = a["chain_start"].tolist()
        nchains = trace.nchains
        chain_ops: list[list[int]] = [[] for _ in range(nchains)]
        for i, ch in enumerate(a["chain"].tolist()):
            chain_ops[ch].append(i)
        self.chain_ops = chain_ops
        self.recorded_spec = trace.recorded_spec()
        self._recorded_fields = dataclasses.asdict(self.recorded_spec)
        self._recorded_fields.pop("name")
        # Comm matrices are spec-independent: the transfer pattern is frozen.
        nranks = self.nranks
        sel = a["kind"] == _ops.OP_XFER
        pairs = a["a"][sel].astype(np.int64)
        nb = a["c"][sel]
        n2 = nranks * nranks
        self.comm_messages = np.bincount(pairs, minlength=n2)[:n2].reshape(
            nranks, nranks
        )
        comm_bytes = np.zeros(n2, np.int64)
        np.add.at(comm_bytes, pairs, nb)
        self.comm_bytes = comm_bytes.reshape(nranks, nranks)
        # Obs side-table grouping: per (rank, kind) row indices in record
        # order, so per-spec totals reduce to grouped cumulative sums.
        obs_kinds: list[str] = trace.manifest.get("obs_kinds", [])
        self.obs_kinds = obs_kinds
        groups: list[dict[str, list[int]]] = [{} for _ in range(nranks)]
        for row, (r, kid) in enumerate(
            zip(a["obs_rank"].tolist(), a["obs_kind"].tolist())
        ):
            groups[r].setdefault(obs_kinds[kid], []).append(row)
        obs_nbytes = a["obs_nbytes"]
        self.obs_groups: list[dict[str, tuple[np.ndarray, int, int]]] = []
        for per in groups:
            compiled: dict[str, tuple[np.ndarray, int, int]] = {}
            for kname, idx in per.items():
                idx_a = np.asarray(idx)
                compiled[kname] = (idx_a, len(idx), int(obs_nbytes[idx_a].sum()))
            self.obs_groups.append(compiled)

    def same_spec(self, spec: MachineSpec) -> bool:
        if spec is self.recorded_spec:
            return True
        fields = dataclasses.asdict(spec)
        fields.pop("name")
        return fields == self._recorded_fields

    def costs_for(self, spec: MachineSpec) -> np.ndarray:
        a = self.trace.arrays
        return eval_costs(
            a["kind"] * 0 + a["ck"],  # plain ck column (defensive copy not needed)
            a["c0"], a["c1"], a["c2"], a["d"], spec, self.nranks,
        )


def _check_faults(plan) -> None:
    for attr in ("drop_rate", "corrupt_rate", "dup_rate"):
        if getattr(plan, attr, 0.0):
            raise ReplayError(
                f"replay only supports drop-free FaultPlans: {attr}="
                f"{getattr(plan, attr)!r} would change the recorded pattern"
            )
    if getattr(plan, "crashes", ()):
        raise ReplayError("replay cannot apply image crashes to a recorded trace")


def replay(
    trace: Trace | CompiledTrace,
    spec: MachineSpec | None = None,
    *,
    faults=None,
    check_deliver: bool = False,
) -> ReplayResult:
    """Re-price ``trace`` under ``spec`` (default: the recorded spec).

    ``faults`` may be a drop-free :class:`~repro.sim.faults.FaultPlan`
    whose per-message delays are drawn in recorded transfer order.
    ``check_deliver=True`` counts transfers whose recomputed delivery time
    differs from the recorded one (a validation aid; meaningful only at
    the recorded spec with no faults).
    """
    compiled = trace if isinstance(trace, CompiledTrace) else CompiledTrace(trace)
    recorded = compiled.recorded_spec
    if spec is None:
        spec = recorded
    if faults is not None:
        _check_faults(faults)
    nranks = compiled.nranks
    same_spec = compiled.same_spec(spec)
    warnings = [] if same_spec else structure_warnings(recorded, spec, nranks)

    cost = compiled.costs_for(spec).tolist()
    makespan, deliver_miss = _run(compiled, cost, spec, nranks, faults, check_deliver)
    op_totals, per_rank, obs_warn = _obs_totals(compiled, spec, recorded, same_spec)
    warnings.extend(obs_warn)
    manifest = compiled.trace.manifest
    return ReplayResult(
        makespan=makespan,
        spec_name=spec.name,
        nranks=nranks,
        backend=manifest.get("backend", ""),
        app=manifest.get("app", ""),
        op_totals=op_totals,
        per_rank=per_rank,
        comm_messages=compiled.comm_messages,
        comm_bytes=compiled.comm_bytes,
        warnings=warnings,
        deliver_mismatches=deliver_miss,
    )


def _run(
    compiled: CompiledTrace,
    cost: list[float],
    spec: MachineSpec,
    nranks: int,
    faults,
    check_deliver: bool,
) -> tuple[float, int]:
    kind_l = compiled.kind
    a_l, b_l, c_l, c0_l, d_l = compiled.a, compiled.b, compiled.c, compiled.c0, compiled.d
    chain_ops = compiled.chain_ops
    nchains = len(chain_ops)
    ptr = [0] * nchains

    # Fabric state — the same arithmetic, in the same order, as
    # NetFabric.transfer (bit-exact delivery times at the recorded spec).
    latency = spec.latency
    bandwidth = spec.bandwidth
    header = spec.header_bytes
    tx_oh = spec.tx_msg_overhead
    rx_oh = spec.rx_msg_overhead
    loopback = spec.loopback_latency
    copy_bw = spec.mem_copy_bw
    rpn = spec.ranks_per_node
    node = [r // rpn for r in range(nranks)]
    srq_pen = spec.gasnet_srq_penalty if spec.srq_active(nranks) else 0.0
    tx_free = [0.0] * nranks
    rx_free = [0.0] * nranks
    pair_last: dict[int, float] = {}

    heap: list[tuple[float, int, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    events: dict[int, list] = {}  # id -> [fired, waiter chains]
    counters: dict[int, list] = {}  # id -> [count, waiter chains]
    chans: dict[int, list] = {}  # id -> [available put seqs, waiter chains]
    last = 0.0
    deliver_miss = 0
    faults_active = faults is not None and getattr(faults, "active", False)

    def sched(child: int, start: float) -> None:
        nonlocal last
        ops_c = chain_ops[child]
        if ops_c:
            push(heap, (start, ops_c[0], child))
        elif start > last:
            last = start

    OP_SLEEP = _ops.OP_SLEEP
    OP_CALL = _ops.OP_CALL
    OP_XFER = _ops.OP_XFER
    OP_FIRE = _ops.OP_FIRE
    OP_WAITEV = _ops.OP_WAITEV
    OP_ADD = _ops.OP_ADD
    OP_WAITGE = _ops.OP_WAITGE
    OP_TAKE = _ops.OP_TAKE
    OP_PUT = _ops.OP_PUT
    OP_CHGET = _ops.OP_CHGET

    for cid in range(nchains):
        if compiled.chain_kind[cid] != _ops.CHAIN_CB:
            sched(cid, compiled.chain_start[cid])

    while heap:
        t, _gq, ch = pop(heap)
        if t > last:
            last = t
        ops_ch = chain_ops[ch]
        n_ch = len(ops_ch)
        p = ptr[ch]
        t0 = t
        while True:
            if p == n_ch:
                ptr[ch] = p
                if t > last:
                    last = t
                break
            i = ops_ch[p]
            k = kind_l[i]
            if k == OP_SLEEP:
                t += cost[i]
                p += 1
                continue
            if t != t0:
                # The chain's clock moved past the popped time: this op is
                # a fresh scheduling point — NIC/sync state must be touched
                # in global time order.
                ptr[ch] = p
                push(heap, (t, i, ch))
                break
            if k == OP_XFER:
                pair = a_l[i]
                src = pair // nranks
                dst = pair - src * nranks
                nb = c_l[i]
                if node[src] == node[dst]:
                    deliver = t + loopback + nb / copy_bw
                else:
                    ser = (nb + header) / bandwidth
                    txf = tx_free[src]
                    depart = t if t > txf else txf
                    tx_free[src] = depart + ser + tx_oh
                    head_arrive = depart + latency
                    rxf = rx_free[dst]
                    deliver = (
                        (head_arrive if head_arrive > rxf else rxf)
                        + ser
                        + rx_oh
                        + (srq_pen if c0_l[i] > 0.0 else 0.0)
                    )
                    rx_free[dst] = deliver
                plast = pair_last.get(pair, 0.0)
                if deliver < plast:
                    deliver = plast
                pair_last[pair] = deliver
                if faults_active:
                    decision = faults.draw(src, dst, nb)
                    if decision.discard or decision.duplicate:
                        raise ReplayError(
                            "FaultPlan drew a pattern-changing decision "
                            "(drop/corrupt/duplicate) during replay"
                        )
                    if decision.extra_delay > 0.0:
                        deliver += decision.extra_delay
                if check_deliver and deliver != d_l[i]:
                    deliver_miss += 1
                child = b_l[i]  # inlined sched() — this is the hot path
                child_ops = chain_ops[child]
                if child_ops:
                    push(heap, (deliver, child_ops[0], child))
                elif deliver > last:
                    last = deliver
            elif k == OP_CALL:
                child = a_l[i]
                start = t + cost[i]
                child_ops = chain_ops[child]
                if child_ops:
                    push(heap, (start, child_ops[0], child))
                elif start > last:
                    last = start
            elif k == OP_FIRE:
                st = events.get(a_l[i])
                if st is None:
                    events[a_l[i]] = [True, []]
                else:
                    st[0] = True
                    w = st[1]
                    if w:
                        st[1] = []
                        for wch in w:
                            push(heap, (t, chain_ops[wch][ptr[wch]], wch))
            elif k == OP_WAITEV:
                st = events.get(a_l[i])
                if st is None:
                    st = events[a_l[i]] = [False, []]
                if not st[0]:
                    st[1].append(ch)
                    ptr[ch] = p
                    break
            elif k == OP_ADD:
                st = counters.get(a_l[i])
                if st is None:
                    counters[a_l[i]] = [b_l[i], []]
                else:
                    st[0] += b_l[i]
                    w = st[1]
                    if w:
                        st[1] = []
                        for wch in w:
                            push(heap, (t, chain_ops[wch][ptr[wch]], wch))
            elif k == OP_WAITGE:
                st = counters.get(a_l[i])
                if st is None:
                    st = counters[a_l[i]] = [0, []]
                if st[0] < b_l[i]:
                    st[1].append(ch)
                    ptr[ch] = p
                    break
            elif k == OP_TAKE:
                st = counters.get(a_l[i])
                if st is None:
                    st = counters[a_l[i]] = [0, []]
                if st[0] < b_l[i]:
                    st[1].append(ch)
                    ptr[ch] = p
                    break
                st[0] -= b_l[i]
            elif k == OP_PUT:
                st = chans.get(a_l[i])
                if st is None:
                    chans[a_l[i]] = [{b_l[i]}, []]
                else:
                    st[0].add(b_l[i])
                    w = st[1]
                    if w:
                        st[1] = []
                        for wch in w:
                            push(heap, (t, chain_ops[wch][ptr[wch]], wch))
            elif k == OP_CHGET:
                seq = b_l[i]
                st = chans.get(a_l[i])
                if st is None:
                    st = chans[a_l[i]] = [set(), []]
                if seq >= 0:
                    if seq not in st[0]:
                        st[1].append(ch)
                        ptr[ch] = p
                        break
                    st[0].discard(seq)
            else:  # pragma: no cover - format invariant
                raise ReplayError(f"unknown op kind {k} at gseq {i}")
            p += 1

    # Every non-daemon process chain must have drained (at the recorded
    # spec this mirrors the live run completing; elsewhere a stuck chain
    # means the frozen pattern is invalid under the target conditions).
    stuck = [
        cid
        for cid in range(nchains)
        if compiled.chain_kind[cid] == _ops.CHAIN_PROC
        and not compiled.chain_daemon[cid]
        and ptr[cid] < len(chain_ops[cid])
    ]
    if stuck:
        ranks = [compiled.chain_rank[cid] for cid in stuck]
        raise ReplayError(f"replay deadlock: process chains stuck (ranks {ranks})")

    return last, deliver_miss


def _obs_totals(
    compiled: CompiledTrace,
    spec: MachineSpec,
    recorded: MachineSpec,
    same_spec: bool,
) -> tuple[dict, list, list[str]]:
    arr = compiled.trace.arrays
    obs_kinds = compiled.obs_kinds
    nranks = compiled.nranks
    seconds = arr["obs_seconds"]
    warnings: list[str] = []
    if not same_spec and obs_kinds:
        seconds = seconds.copy()
        kind_col = arr["obs_kind"]
        unrepriced = []
        for kid, kname in enumerate(obs_kinds):
            mask = kind_col == kid
            if not mask.any():
                continue
            priced = obs_formula(kname, arr["obs_nbytes"][mask], spec, recorded, nranks)
            if priced is None:
                unrepriced.append(kname)
            else:
                seconds[mask] = priced
        if unrepriced:
            warnings.append(
                "per-op totals kept recorded values for span-measured kinds: "
                + ", ".join(sorted(unrepriced))
            )
    # Per-(rank, kind) cumulative sums over the precompiled record-order
    # index groups: the same left-to-right IEEE additions the live Metrics
    # registry performs, one C loop per group instead of a python row walk.
    per_rank: list[dict[str, dict[str, Any]]] = []
    for groups in compiled.obs_groups:
        per = {}
        for kname, (idx, calls, nbytes) in groups.items():
            secs = seconds[idx]
            per[kname] = {
                "calls": calls,
                "bytes": nbytes,
                "time": float(np.cumsum(secs)[-1]) if calls else 0.0,
            }
        per_rank.append(per)
    totals: dict[str, dict[str, Any]] = {}
    for pr in per_rank:  # rank order, mirroring Metrics.aggregate merges
        for kname, d in pr.items():
            agg = totals.get(kname)
            if agg is None:
                agg = totals[kname] = {"calls": 0, "bytes": 0, "time": 0.0}
            agg["calls"] += d["calls"]
            agg["bytes"] += d["bytes"]
            agg["time"] += d["time"]
    return totals, per_rank, warnings


def validate_trace(trace: Trace) -> list[str]:
    """Deep validation: structure, cost annotations, and self-replay.

    Returns a list of problems (empty = valid). Self-replay at the
    recorded spec must reproduce the recorded makespan bit-for-bit and
    every recomputed delivery time must equal the recorded one.
    """
    problems: list[str] = []
    try:
        trace.check_structure()
    except Exception as exc:
        return [f"structure: {exc}"]
    compiled = CompiledTrace(trace)
    recorded = compiled.recorded_spec
    # Annotated costs must re-evaluate to the recorded durations.
    arr = trace.arrays
    costs = compiled.costs_for(recorded)
    priced = (arr["ck"] != 0) & np.isin(arr["kind"], (_ops.OP_SLEEP, _ops.OP_CALL))
    bad = priced & (costs != arr["d"])
    if bad.any():
        idx = np.nonzero(bad)[0][:5]
        problems.append(
            f"{int(bad.sum())} annotated costs disagree with recorded "
            f"durations at the recorded spec (first at gseq {idx.tolist()})"
        )
    try:
        result = replay(compiled, recorded, check_deliver=True)
    except Exception as exc:
        problems.append(f"self-replay failed: {exc}")
        return problems
    want = trace.manifest.get("makespan")
    if result.makespan != want:
        problems.append(
            f"self-replay makespan {result.makespan!r} != recorded {want!r}"
        )
    if result.deliver_mismatches:
        problems.append(
            f"{result.deliver_mismatches} transfer delivery times disagree "
            "with the recorded fabric schedule"
        )
    return problems
