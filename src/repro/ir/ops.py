"""The shared op vocabulary: one typed model for static and dynamic op streams.

Two layers live here:

* **Protocol method vocabulary** — the CAF / MPI / GASNet method-name
  classification tables that ``repro.lint``'s static op-stream extraction
  uses to type AST call sites. They were born in ``repro.lint.model`` and
  moved here so the static linter and the dynamic trace recorder agree on
  what is a collective, a put, a get, a sync point.

* **Dynamic IR op model** — the op kinds a recorded trace is made of
  (mirroring the instrumented call surface: local compute sleeps,
  scheduled callbacks, fabric transfers, event fire/wait, counter
  add/wait/take, channel put/get) plus a typed dataclass view
  (:class:`IrOp` subclasses) over the columnar trace storage. Every op
  carries a stable id (its global record sequence number ``gseq`` — live
  execution order), the chain (execution context) it belongs to, and its
  dependence tokens (event / counter / channel ids, transfer peers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.irhook import CK_LIT, COST_FIELDS  # noqa: F401  (re-exported)

# -- protocol method vocabulary (shared with repro.lint) -------------------

#: Collectives: every image of the team must call them, in the same order.
COLLECTIVE_METHODS = frozenset(
    {
        "sync_all",
        "barrier",
        "team_broadcast",
        "team_reduce",
        "team_allreduce",
        "team_alltoall",
        "team_allgather",
        "team_broadcast_async",
        "team_reduce_async",
        "team_allreduce_async",
        "team_alltoall_async",
        "team_allgather_async",
        "team_split",
        # MPI communicator collectives (blocking and nonblocking).
        "bcast",
        "reduce",
        "allreduce",
        "alltoall",
        "alltoallv",
        "allgather",
        "gather",
        "scatter",
        "reduce_scatter_block",
        "ibarrier",
        "ibcast",
        "ireduce",
        "iallreduce",
        "ialltoall",
        "iallgather",
        # GASNet team collectives.
        "broadcast",
    }
)

#: One-sided writes (data lands in a remote image's memory).
PUT_METHODS = frozenset(
    {
        "write",
        "write_section",
        "write_async",
        "put",
        "rput",
        "put_runs",
        "put_nb",
        "put_runs_nb",
        "accumulate",
        "raccumulate",
    }
)

#: One-sided reads.
GET_METHODS = frozenset(
    {
        "read",
        "read_section",
        "read_async",
        "get",
        "rget",
        "get_runs",
        "get_nb",
        "get_runs_nb",
        "get_accumulate",
        "fetch_and_op",
        "compare_and_swap",
    }
)

#: Asynchronous ops whose local completion must be observed explicitly.
ASYNC_METHODS = frozenset({"write_async", "read_async", "copy_async"})

#: Calls that act as a synchronization point in program order: they either
#: complete this image's outstanding one-sided traffic or establish a
#: happens-before edge (event wait) that the repo's protocols pair with
#: remote completion. Clearing hazards on *any* of these keeps the linter
#: false-positive-free on disciplined code.
SYNC_METHODS = (
    frozenset(
        {
            "sync_all",
            "sync_images",
            "cofence",
            "quiet",
            "wait",
            "trywait",
            "wait_syncnb",
            "wait_syncnb_all",
            "flush",
            "flush_all",
            "flush_local",
            "flush_local_all",
            "rflush",
            "rflush_all",
            "fence",
            "unlock",
            "unlock_all",
            "finish",
        }
    )
    | COLLECTIVE_METHODS
)

#: Calls that can block the calling image (AM handlers must never).
BLOCKING_METHODS = (
    frozenset(
        {
            "sync_all",
            "sync_images",
            "cofence",
            "quiet",
            "wait",
            "waitall",
            "wait_syncnb",
            "wait_syncnb_all",
            "recv",
            "send",
            "sendrecv",
            "probe",
            "serve",
            "block_until",
            "flush",
            "flush_all",
            "lock",
            "lock_all",
            "unlock",
            "unlock_all",
            "fence",
        }
    )
    | (
        COLLECTIVE_METHODS
        - {"ibarrier", "ibcast", "ireduce", "iallreduce", "ialltoall", "iallgather"}
    )
)

#: Blocking calls when issued on an MPI handle (the Fig. 2 rule's "enter
#: the other runtime and stop progressing this one" set).
MPI_BLOCKING_METHODS = frozenset(
    {
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "alltoall",
        "alltoallv",
        "allgather",
        "gather",
        "scatter",
        "reduce_scatter_block",
        "recv",
        "send",
        "sendrecv",
        "probe",
        "wait",
        "waitall",
    }
)

#: Window RMA verbs (epoch rules).
WINDOW_RMA_METHODS = frozenset(
    {
        "put",
        "rput",
        "get",
        "rget",
        "accumulate",
        "raccumulate",
        "get_accumulate",
        "fetch_and_op",
        "compare_and_swap",
        "put_runs",
        "get_runs",
    }
)

# -- dynamic IR op kinds ---------------------------------------------------

OP_SLEEP = 0  # advance the chain's clock by a (re-priceable) cost
OP_CALL = 1  # schedule a child chain after a (re-priceable) delay
OP_XFER = 2  # fabric transfer; delivery starts the referenced child chain
OP_FIRE = 3  # SimEvent.fire
OP_WAITEV = 4  # SimEvent.wait completion
OP_ADD = 5  # Counter.add
OP_WAITGE = 6  # Counter.wait_geq completion (non-consuming)
OP_TAKE = 7  # Counter.take completion (check-and-consume, atomic in replay)
OP_PUT = 8  # Channel.put (carries the per-channel put sequence number)
OP_CHGET = 9  # Channel receive completion (matched put sequence number)

OP_NAMES = (
    "sleep",
    "call",
    "xfer",
    "fire",
    "wait_event",
    "add",
    "wait_geq",
    "take",
    "chan_put",
    "chan_get",
)

# Chain kinds (execution contexts).
CHAIN_PROC = 0  # a simulated process fiber (rank >= 0 for rank processes)
CHAIN_CB = 1  # a scheduled callback (started by a CALL or XFER op)
CHAIN_EXTERNAL = 2  # scheduled from outside any context (absolute start time)


# -- typed dataclass view --------------------------------------------------


@dataclass(frozen=True)
class IrOp:
    """Base of the typed op view; ``gseq`` is the stable op id."""

    gseq: int
    chain: int


@dataclass(frozen=True)
class SleepOp(IrOp):
    cost_kind: int
    cost_args: tuple[float, float, float]
    recorded: float  # live duration (the CK_LIT fallback value)


@dataclass(frozen=True)
class CallOp(IrOp):
    child: int
    cost_kind: int
    cost_args: tuple[float, float, float]
    recorded: float  # live delay


@dataclass(frozen=True)
class TransferOp(IrOp):
    src: int
    dst: int
    nbytes: int
    srq_rx: bool  # recorded with SRQ delivery occupancy
    child: int  # delivery chain
    recorded_deliver: float  # live delivery time (validation aid)


@dataclass(frozen=True)
class EventFireOp(IrOp):
    event: int


@dataclass(frozen=True)
class EventWaitOp(IrOp):
    event: int


@dataclass(frozen=True)
class CounterAddOp(IrOp):
    counter: int
    amount: int


@dataclass(frozen=True)
class CounterWaitOp(IrOp):
    counter: int
    threshold: int


@dataclass(frozen=True)
class CounterTakeOp(IrOp):
    counter: int
    amount: int


@dataclass(frozen=True)
class ChannelPutOp(IrOp):
    channel: int
    seq: int


@dataclass(frozen=True)
class ChannelGetOp(IrOp):
    channel: int
    seq: int
