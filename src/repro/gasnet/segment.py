"""Symmetric bump/stack allocator for GASNet segments.

CAF coarrays over GASNet live at segment offsets. Because every image
performs the same (collective) allocations in the same order with the same
sizes, offsets agree across images — the symmetric-heap property remote
puts/gets rely on. Scratch regions for hand-rolled collectives are
allocated with :meth:`mark` / :meth:`release` in LIFO order.
"""

from __future__ import annotations

from repro.util.errors import GasnetError


def _align_up(n: int, align: int) -> int:
    return (n + align - 1) // align * align


class SegmentAllocator:
    def __init__(self, capacity: int):
        if capacity <= 0:
            raise GasnetError(f"segment capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._top = 0

    def alloc(self, nbytes: int, align: int = 16) -> int:
        """Reserve ``nbytes`` and return the segment offset."""
        if nbytes < 0:
            raise GasnetError(f"negative allocation {nbytes}")
        offset = _align_up(self._top, align)
        if offset + nbytes > self.capacity:
            raise GasnetError(
                f"segment exhausted: need {nbytes} at {offset}, capacity {self.capacity}"
            )
        self._top = offset + nbytes
        return offset

    def mark(self) -> int:
        """Checkpoint for LIFO scratch allocation."""
        return self._top

    def release(self, marker: int) -> None:
        """Pop back to a previous :meth:`mark`."""
        if not 0 <= marker <= self._top:
            raise GasnetError(f"bad release marker {marker} (top={self._top})")
        self._top = marker

    @property
    def used(self) -> int:
        return self._top

    @property
    def free(self) -> int:
        return self.capacity - self._top
