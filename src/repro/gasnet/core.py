"""GASNet core + extended API on the simulated fabric.

Progress model
--------------
RDMA put/get complete purely in the network (no target CPU), like
InfiniBand RDMA. Active Messages land in a per-rank queue and their
handlers run only when the *target* calls :meth:`GasnetRank.poll` — which
every blocking GASNet call does internally (``GASNET_BLOCKUNTIL``
semantics). A process blocked outside GASNet (e.g. in an MPI barrier)
never runs its AM handlers: exactly the interoperability hazard of the
paper's Figure 2.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.sim import irhook as _irhook
from repro.sim.cluster import Cluster, RankCtx
from repro.sim.memory import MB
from repro.sim.sync import Counter, SimEvent
from repro.util.errors import GasnetError, GasnetProcFailedError

AM_MAX_ARGS = 16
AM_MAX_MEDIUM = 65536  # bytes of medium-AM payload

_handle_ids = itertools.count()


@dataclass
class Handle:
    """Completion handle for a nonblocking put/get (gasnet_handle_t)."""

    kind: str
    event: SimEvent = field(default_factory=lambda: SimEvent("gasnet-handle"))
    #: Sanitizer shadow records released when this handle is synced.
    records: list = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.event.is_set


@dataclass
class Token:
    """Handler token: identifies the requester and allows one reply."""

    src: int
    gasnet: "GasnetRank"

    def reply_short(self, handler_idx: int, *args: int) -> None:
        """AMReplyShort: send a short AM back to the requester."""
        self.gasnet._am_inject(
            self.src, handler_idx, args, payload=None, dest_offset=None, is_reply=True
        )


@dataclass
class _QueuedAM:
    src: int
    handler_idx: int
    args: tuple[int, ...]
    payload: np.ndarray | None  # medium AM payload (bounce buffer copy)
    dest_offset: int | None  # long AM landing offset (data already in segment)
    nbytes: int
    is_reply: bool = False  # replies do not return a flow-control credit
    #: Sender's vector-clock snapshot (sanitized runs): the handler run at
    #: the target is a happens-before edge from the injection.
    clock: tuple | None = None


class GasnetWorld:
    """Shared GASNet library state for one cluster run."""

    @classmethod
    def get(cls, cluster: Cluster) -> "GasnetWorld":
        return cluster.shared("gasnet-world", lambda: cls(cluster))

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.nranks = cluster.nranks
        self.segments: list[np.ndarray | None] = [None] * cluster.nranks
        self.ranks: dict[int, GasnetRank] = {}
        self.srq_enabled = cluster.spec.srq_active(cluster.nranks)
        self._attached = Counter("gasnet.attached")

    def attach(self, ctx: RankCtx, segment_bytes: int) -> "GasnetRank":
        """gasnet_init + gasnet_attach for one rank (collective: returns only
        once every rank has attached, like the real bootstrap)."""
        if ctx.rank in self.ranks:
            raise GasnetError(f"rank {ctx.rank} attached to GASNet twice")
        if segment_bytes <= 0:
            raise GasnetError(f"segment size must be positive, got {segment_bytes}")
        self.segments[ctx.rank] = np.zeros(segment_bytes, np.uint8)
        g = GasnetRank(self, ctx)
        self.ranks[ctx.rank] = g
        spec = ctx.spec
        nranks = self.nranks
        meta_mb = spec.gasnet_mem_base_mb + spec.gasnet_mem_log_mb * math.log2(
            max(nranks, 2)
        )
        ctx.memory.alloc(ctx.rank, "gasnet/base", meta_mb * MB)
        if not self.srq_enabled:
            # Without the Shared Receive Queue, per-peer receive buffers
            # grow linearly — the memory SRQ exists to save (paper §4.1).
            ctx.memory.alloc(
                ctx.rank, "gasnet/rbuf", spec.gasnet_mem_nosrq_per_rank_mb * MB * nranks
            )
        ctx.memory.alloc(ctx.rank, "gasnet/segment", segment_bytes)
        self._attached.add()
        self._attached.wait_geq(ctx.proc, self.nranks)
        return g


class GasnetRank:
    """Per-rank GASNet facade."""

    def __init__(self, world: GasnetWorld, ctx: RankCtx):
        self.world = world
        self.ctx = ctx
        self.rank = ctx.rank
        self.nranks = world.nranks
        self.handlers: dict[int, Callable[..., Any]] = {}
        self.am_queue: deque[_QueuedAM] = deque()
        #: Restricts which handler indices THIS view may run (progress
        #: agents set it on their clones; None = unrestricted).
        self.default_handler_filter: set[int] | None = None
        #: Callables run at every poll (library progress hooks, e.g. CAF
        #: runtime continuations). Shared across clones.
        self.poll_hooks: list[Callable[[], None]] = []
        #: Bumped on every arrival/completion; blocking calls wait on it.
        self.activity = Counter(f"gasnet.activity[{ctx.rank}]")
        #: AM request/reply flow control: available request slots per peer.
        self._credits: dict[int, int] = {}
        self.am_requests_sent = 0
        self.am_handled = 0
        # Fixed at cluster construction; cached so per-op metrics guards
        # are one attribute load (clones share the handle via __dict__).
        self._obs = ctx.metrics

    # -- segment ---------------------------------------------------------

    @property
    def segment(self) -> np.ndarray:
        seg = self.world.segments[self.rank]
        assert seg is not None
        return seg

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise GasnetError(f"rank {rank} out of range [0, {self.nranks})")

    def _check_alive(self, rank: int) -> None:
        """Entry-point check: initiating communication with a crashed rank
        fails eagerly. Only called from API entry points (never from
        delivery callbacks, which must survive a peer dying mid-flight)."""
        if rank in self.ctx.cluster.failed_ranks:
            raise GasnetProcFailedError(rank)

    def segment_of(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        seg = self.world.segments[rank]
        if seg is None:
            raise GasnetError(f"rank {rank} has not attached a segment")
        return seg

    def _check_range(self, rank: int, offset: int, nbytes: int) -> None:
        seg = self.segment_of(rank)
        if offset < 0 or offset + nbytes > seg.nbytes:
            raise GasnetError(
                f"segment access [{offset}, {offset + nbytes}) outside rank "
                f"{rank}'s {seg.nbytes}-byte segment"
            )

    def _rx_extra(self) -> float:
        return self.ctx.spec.gasnet_srq_penalty if self.world.srq_enabled else 0.0

    # -- active messages ----------------------------------------------------

    def register_handler(self, idx: int, fn: Callable[..., Any]) -> None:
        """Register AM handler ``idx``. Short handlers get ``(token, *args)``;
        medium get ``(token, payload, *args)``; long get
        ``(token, offset, nbytes, *args)``."""
        if idx in self.handlers:
            raise GasnetError(f"handler index {idx} already registered")
        self.handlers[idx] = fn

    def _acquire_credit(self, dest: int) -> None:
        """Block (with AM progress) until a request slot to ``dest`` frees.

        Models GASNet's request/reply flow control: a sender cannot run
        unboundedly ahead of the target's handler drain rate, which is what
        bounds the sustained EVENT_NOTIFY rate in the paper's
        microbenchmarks.
        """
        limit = self.ctx.spec.gasnet_am_credits
        if limit is None:
            return
        if self._credits.get(dest, limit) <= 0:
            self.block_until(
                lambda: self._credits.get(dest, limit) > 0,
                f"am credits to rank {dest}",
            )
        self._credits[dest] = self._credits.get(dest, limit) - 1

    def _credit_returned(self, dest: int) -> None:
        limit = self.ctx.spec.gasnet_am_credits
        if limit is None:
            return
        self._credits[dest] = self._credits.get(dest, limit) + 1
        self.activity.add()

    def _am_inject(
        self,
        dest: int,
        handler_idx: int,
        args: tuple[int, ...],
        payload: np.ndarray | None,
        dest_offset: int | None,
        *,
        is_reply: bool = False,
    ) -> None:
        if len(args) > AM_MAX_ARGS:
            raise GasnetError(f"AM carries {len(args)} args > AMMaxArgs={AM_MAX_ARGS}")
        self._check_rank(dest)
        self._check_alive(dest)
        spec = self.ctx.spec
        if not is_reply:
            # Replies have a guaranteed slot; only requests consume credits.
            self._acquire_credit(dest)
        obs = self._obs
        if obs is not None:
            obs.record(
                self.rank, "gasnet.am",
                0 if payload is None else payload.nbytes,
                spec.gasnet_am_overhead,
            )
        self.ctx.proc.sleep(spec.gasnet_am_overhead)
        self.am_requests_sent += 1
        nbytes = 0 if payload is None else payload.nbytes
        wire = 32 + nbytes
        src = self.rank
        target = self.world.ranks.get(dest)
        if target is None:
            raise GasnetError(f"AM to rank {dest}, which has not attached")
        qam = _QueuedAM(
            src=src,
            handler_idx=handler_idx,
            args=args,
            payload=payload,
            dest_offset=dest_offset,
            nbytes=nbytes,
            is_reply=is_reply,
        )
        san = self.ctx.sanitizer
        if san is not None:
            qam.clock = san.snapshot(self.rank)

        def on_delivered() -> None:
            if qam.dest_offset is not None and qam.payload is not None:
                # Long AM: payload lands in the target segment before the
                # handler is queued.
                seg = self.world.segments[dest]
                assert seg is not None
                seg[qam.dest_offset : qam.dest_offset + qam.nbytes] = qam.payload
            target.am_queue.append(qam)
            target.activity.add()

        self.ctx.fabric.send(
            src, dest, wire, on_delivered, rx_extra=self._rx_extra(), reliable=True
        )

    def am_request_short(self, dest: int, handler_idx: int, *args: int) -> None:
        """AMRequestShort: a few integer arguments, no payload."""
        self._am_inject(dest, handler_idx, args, payload=None, dest_offset=None)

    def am_request_medium(self, dest: int, handler_idx: int, payload, *args: int) -> None:
        """AMRequestMedium: opaque payload into a target bounce buffer."""
        data = np.ascontiguousarray(payload).reshape(-1).view(np.uint8).copy()
        if data.nbytes > AM_MAX_MEDIUM:
            raise GasnetError(
                f"medium AM payload {data.nbytes} > AMMaxMedium={AM_MAX_MEDIUM}"
            )
        self._am_inject(dest, handler_idx, args, payload=data, dest_offset=None)

    def am_request_long(
        self, dest: int, handler_idx: int, payload, dest_offset: int, *args: int
    ) -> None:
        """AMRequestLong: payload lands at a predetermined segment address."""
        data = np.ascontiguousarray(payload).reshape(-1).view(np.uint8).copy()
        self._check_range(dest, dest_offset, data.nbytes)
        self._am_inject(dest, handler_idx, args, payload=data, dest_offset=dest_offset)

    def clone_for(self, ctx) -> "GasnetRank":
        """A view of this rank bound to another execution context.

        Shares every piece of library state (handlers, AM queue, activity
        counter, credits) but charges costs to ``ctx.proc`` — how a library
        progress agent participates in GASNet on the rank's behalf.
        """
        clone = object.__new__(GasnetRank)
        clone.__dict__ = dict(self.__dict__)
        clone.ctx = ctx
        clone.default_handler_filter = None
        return clone

    def poll(self, handler_filter: "set[int] | None" = None) -> int:
        """gasnet_AMPoll: run queued AM handlers; returns how many ran.

        ``handler_filter`` restricts which handler indices this caller may
        execute (used by progress agents so they never run application
        handlers on the wrong execution context); others stay queued.
        """
        spec = self.ctx.spec
        if handler_filter is None:
            handler_filter = self.default_handler_filter
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_GASNET_POLL)
        self.ctx.proc.sleep(spec.gasnet_poll_overhead)
        for hook in self.poll_hooks:
            hook()
        ran = 0
        pending = []
        while self.am_queue:
            qam = self.am_queue.popleft()
            if handler_filter is not None and qam.handler_idx not in handler_filter:
                pending.append(qam)
                continue
            cost = spec.gasnet_handler_overhead
            if self.world.srq_enabled:
                cost += spec.gasnet_srq_penalty
            _irhook.annotate(_irhook.CK_HANDLER)
            self.ctx.proc.sleep(cost)
            handler = self.handlers.get(qam.handler_idx)
            if handler is None:
                raise GasnetError(f"no handler registered at index {qam.handler_idx}")
            san = self.ctx.sanitizer
            if san is not None:
                # Running the handler is the synchronization edge: the
                # sender's history happened-before this (logical) rank.
                san.merge(self.rank, qam.clock)
            token = Token(src=qam.src, gasnet=self)
            if qam.dest_offset is not None:
                handler(token, qam.dest_offset, qam.nbytes, *qam.args)
            elif qam.payload is not None:
                handler(token, qam.payload, *qam.args)
            else:
                handler(token, *qam.args)
            self.am_handled += 1
            ran += 1
            if not qam.is_reply:
                # The implicit reply returns the sender's flow-control
                # credit one wire latency later.
                sender = self.world.ranks.get(qam.src)
                if sender is not None:
                    back = (
                        spec.loopback_latency
                        if spec.node_of(qam.src) == spec.node_of(self.rank)
                        else spec.latency
                    )
                    dest = self.rank
                    _irhook.annotate(_irhook.CK_ACK, qam.src, self.rank)
                    self.ctx.engine.call_in(
                        back, lambda s=sender, d=dest: s._credit_returned(d)
                    )
        # Re-queue messages this caller wasn't allowed to handle, in order.
        for qam in reversed(pending):
            self.am_queue.appendleft(qam)
        if ran:
            # Handlers mutate state other blocked contexts (progress
            # agents, the main image) may be waiting on; make them re-check.
            # Without this, a context that saw an empty queue while another
            # context was mid-handler misses the state change forever.
            self.activity.add()
        return ran

    def block_until(
        self,
        pred: Callable[[], bool],
        reason: str,
        handler_filter: "set[int] | None" = None,
    ) -> None:
        """GASNET_BLOCKUNTIL: poll-and-sleep until ``pred()`` holds.

        Polls AMs on every wake-up, so handlers make progress while this
        image is blocked inside GASNet (and only then).
        """
        while True:
            ran = self.poll(handler_filter)
            if pred():
                return
            seen = self.activity.count
            if ran and self.am_queue:
                continue  # more AMs this caller may handle arrived mid-poll
            self.activity.wait_geq(self.ctx.proc, seen + 1, reason=reason)

    # -- sanitizer plumbing ------------------------------------------------

    def _san_track(
        self, handle: Handle, owner: int, ranges, op: str, *, is_write: bool
    ) -> None:
        """Record an RDMA access against ``owner``'s segment; the record
        releases when the handle is synced (wait_syncnb[_all])."""
        san = self.ctx.sanitizer
        if san is None:
            return
        rec = san.record_remote(
            self.rank, ("seg", owner), ranges, op, is_write=is_write
        )
        if rec is not None:
            handle.records.append(rec)

    def _san_release(self, handles) -> None:
        san = self.ctx.sanitizer
        if san is None:
            return
        for handle in handles:
            if handle.records:
                san.release_records(handle.records)
                handle.records = []

    # -- one-sided RDMA ---------------------------------------------------------

    def put_nb(self, dest: int, dest_offset: int, data) -> Handle:
        """gasnet_put_nb: RDMA write; the handle fires on remote completion
        (data commits at delivery; the origin learns of it one ack later).

        Ships a flat view of the source, not a copy: GASNet forbids
        modifying the source until the handle syncs, so the only copy is
        the commit into the destination segment at delivery.
        """
        arr = np.ascontiguousarray(data).reshape(-1).view(np.uint8)
        self._check_range(dest, dest_offset, arr.nbytes)
        self._check_alive(dest)
        spec = self.ctx.spec
        obs = self._obs
        if obs is not None:
            obs.record(self.rank, "gasnet.put", arr.nbytes, spec.gasnet_put_overhead)
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_GASNET_PUT)
        self.ctx.proc.sleep(spec.gasnet_put_overhead)
        handle = Handle(kind=f"put(dest={dest})")
        self._san_track(
            handle, dest, [(dest_offset, dest_offset + arr.nbytes)],
            "put_nb", is_write=True,
        )
        seg = self.segment_of(dest)
        me = self
        src = self.rank
        if src == dest or spec.node_of(src) == spec.node_of(dest):
            ack = spec.loopback_latency
        else:
            ack = spec.latency
        engine = self.ctx.engine

        dest_rank = self.world.ranks.get(dest)

        def on_delivered() -> None:
            seg[dest_offset : dest_offset + arr.nbytes] = arr
            if dest_rank is not None and dest_rank is not me:
                # The destination may be spinning on segment memory
                # (GASNET_BLOCKUNTIL on a flag): let it re-check.
                dest_rank.activity.add()
            _irhook.annotate(_irhook.CK_ACK, src, dest)
            engine.call_in(ack, lambda: (handle.event.fire(), me.activity.add()))

        self.ctx.fabric.send(
            self.rank, dest, arr.nbytes + 32, on_delivered,
            rx_extra=self._rx_extra(), reliable=True,
        )
        return handle

    def get_nb(self, dest_buf, src: int, src_offset: int) -> Handle:
        """gasnet_get_nb: RDMA read into ``dest_buf``."""
        out = np.asarray(dest_buf)
        if out.size and not out.flags["C_CONTIGUOUS"]:
            raise GasnetError("get destination must be C-contiguous")
        nbytes = out.nbytes
        self._check_range(src, src_offset, nbytes)
        self._check_alive(src)
        spec = self.ctx.spec
        obs = self._obs
        if obs is not None:
            obs.record(self.rank, "gasnet.get", nbytes, spec.gasnet_get_overhead)
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_GASNET_GET)
        self.ctx.proc.sleep(spec.gasnet_get_overhead)
        handle = Handle(kind=f"get(src={src})")
        self._san_track(
            handle, src, [(src_offset, src_offset + nbytes)],
            "get_nb", is_write=False,
        )
        fabric = self.ctx.fabric
        me = self

        def at_source() -> None:
            payload = self.segment_of(src)[src_offset : src_offset + nbytes].copy()

            def at_origin() -> None:
                out.reshape(-1).view(np.uint8)[...] = payload
                handle.event.fire()
                me.activity.add()

            fabric.send(
                src, self.rank, nbytes + 32, at_origin,
                rx_extra=me._rx_extra(), reliable=True,
            )

        fabric.send(
            self.rank, src, 32, at_source, rx_extra=self._rx_extra(), reliable=True
        )
        return handle

    def put_runs_nb(self, dest: int, runs: list[tuple[int, int]], data) -> Handle:
        """Strided RDMA write (the GASNet VIS extended API): one message
        scatters ``data`` into the (byte_offset, nbytes) runs of the
        destination segment."""
        arr = np.ascontiguousarray(data).reshape(-1).view(np.uint8)
        total = sum(n for _off, n in runs)
        if arr.nbytes != total:
            raise GasnetError(f"put_runs data is {arr.nbytes} bytes, runs cover {total}")
        for off, n in runs:
            self._check_range(dest, int(off), int(n))
        self._check_alive(dest)
        spec = self.ctx.spec
        obs = self._obs
        if obs is not None:
            obs.record(
                self.rank, "gasnet.put_runs", arr.nbytes,
                spec.gasnet_put_overhead + spec.copy_time(arr.nbytes),
            )
        # Pack cost at the origin, then a single wire message. Like put_nb,
        # the source may not change until the handle syncs, so no snapshot.
        _irhook.annotate(_irhook.CK_PARAM_COPY, _irhook.F_GASNET_PUT, arr.nbytes)
        self.ctx.proc.sleep(spec.gasnet_put_overhead + spec.copy_time(arr.nbytes))
        handle = Handle(kind=f"put_runs(dest={dest})")
        self._san_track(
            handle, dest, [(int(off), int(off) + int(n)) for off, n in runs],
            "put_runs_nb", is_write=True,
        )
        seg = self.segment_of(dest)
        me = self
        src = self.rank
        if src == dest or spec.node_of(src) == spec.node_of(dest):
            ack = spec.loopback_latency
        else:
            ack = spec.latency
        engine = self.ctx.engine
        dest_rank = self.world.ranks.get(dest)

        def on_delivered() -> None:
            cursor = 0
            for off, n in runs:
                seg[off : off + n] = arr[cursor : cursor + n]
                cursor += n
            if dest_rank is not None and dest_rank is not me:
                dest_rank.activity.add()
            _irhook.annotate(_irhook.CK_ACK, src, dest)
            engine.call_in(ack, lambda: (handle.event.fire(), me.activity.add()))

        self.ctx.fabric.send(
            self.rank, dest, arr.nbytes + 32, on_delivered,
            rx_extra=self._rx_extra(), reliable=True,
        )
        return handle

    def get_runs_nb(self, dest_buf, src: int, runs: list[tuple[int, int]]) -> Handle:
        """Strided RDMA read: gather the source segment's byte runs into
        ``dest_buf`` with one request/response exchange."""
        out = np.asarray(dest_buf)
        total = sum(n for _off, n in runs)
        if out.nbytes != total:
            raise GasnetError(f"get_runs buffer is {out.nbytes} bytes, runs cover {total}")
        for off, n in runs:
            self._check_range(src, int(off), int(n))
        self._check_alive(src)
        spec = self.ctx.spec
        obs = self._obs
        if obs is not None:
            obs.record(self.rank, "gasnet.get_runs", total, spec.gasnet_get_overhead)
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_GASNET_GET)
        self.ctx.proc.sleep(spec.gasnet_get_overhead)
        handle = Handle(kind=f"get_runs(src={src})")
        self._san_track(
            handle, src, [(int(off), int(off) + int(n)) for off, n in runs],
            "get_runs_nb", is_write=False,
        )
        fabric = self.ctx.fabric
        me = self

        def at_source() -> None:
            seg = self.segment_of(src)
            payload = np.concatenate(
                [seg[off : off + n] for off, n in runs]
            ) if runs else np.empty(0, np.uint8)

            def at_origin() -> None:
                out.reshape(-1).view(np.uint8)[...] = payload
                handle.event.fire()
                me.activity.add()

            fabric.send(
                src, self.rank, total + 32, at_origin,
                rx_extra=me._rx_extra(), reliable=True,
            )

        fabric.send(
            self.rank, src, 32, at_source, rx_extra=self._rx_extra(), reliable=True
        )
        return handle

    def wait_syncnb(self, handle: Handle) -> None:
        """gasnet_wait_syncnb: block (with AM progress) until the handle fires."""
        self.block_until(lambda: handle.done, f"wait_syncnb({handle.kind})")
        self._san_release((handle,))

    def wait_syncnb_all(self, handles: list[Handle]) -> None:
        self.block_until(
            lambda: all(h.done for h in handles), "wait_syncnb_all"
        )
        self._san_release(handles)

    def put(self, dest: int, dest_offset: int, data) -> None:
        """gasnet_put (blocking): returns when remotely complete."""
        self.wait_syncnb(self.put_nb(dest, dest_offset, data))

    def get(self, dest_buf, src: int, src_offset: int) -> None:
        """gasnet_get (blocking)."""
        self.wait_syncnb(self.get_nb(dest_buf, src, src_offset))
