"""Hand-rolled collectives over GASNet put/get/AM — CAF-GASNet's approach.

GASNet (as of the paper) has no collective operations, so the original
CAF 2.0 runtime crafts them from one-sided puts and signals. The paper's
§4.2/§5 analysis attributes CAF-GASNet's FFT loss to exactly this: the
hand-rolled all-to-all blasts puts at every peer in naive rank order
(incast at the low ranks plus per-message NIC and signal-handling costs)
while ``MPI_ALLTOALL`` uses a tuned pairwise schedule.

A :class:`TeamExchange` is one team's collective engine on one image. Each
member owns an **arena** (scratch landing space) and a **flag array** in
its segment; members exchange base offsets at construction, so scratch
addresses are computed as ``peer_base + delta`` with identical deltas on
every member (robust even when other teams' allocations skewed the
segment tops). Completion signalling is conduit-dependent
(``spec.gasnet_coll_signal``): RDMA **flag puts** the receiver spins on
(ibv/aries) or short **Active Messages** (pami).
"""

from __future__ import annotations

import functools

import numpy as np

from repro.gasnet.core import GasnetRank
from repro.sim import irhook as _irhook
from repro.gasnet.segment import SegmentAllocator
from repro.util.errors import GasnetError


def _collective(fn):
    """Sanitizer bracket for a team collective.

    The body's puts and flag-spins follow the collective's own internal
    protocol (arena landing zones, monotone markers, drain rounds), so
    per-access checking would only flag its deliberate flag races: record
    nothing inside. The collective's *semantics* — every member's history
    happened-before every exit — become one conservative clock merge.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        san = self.gasnet.ctx.sanitizer
        if san is None:
            return fn(self, *args, **kwargs)
        with san.exempt():
            out = fn(self, *args, **kwargs)
        san.on_collective(self.gasnet.rank, self.members)
        return out

    return wrapper

#: AM handler index space reserved for team signal handlers.
TEAM_SIGNAL_HANDLER_BASE = 1 << 16

DEFAULT_ARENA_BYTES = 8 * 1024 * 1024


class TeamExchange:
    """Collectives for one team over GASNet."""

    def __init__(
        self,
        gasnet: GasnetRank,
        team_id: int,
        members: tuple[int, ...],
        my_index: int,
        allocator: SegmentAllocator,
        *,
        arena_bytes: int | None = None,
        peer_arena_bases: tuple[int, ...] | None = None,
        peer_flag_bases: tuple[int, ...] | None = None,
        defer_handler: bool = False,
    ):
        self.gasnet = gasnet
        self.team_id = team_id
        self.members = members
        self.my_index = my_index
        if arena_bytes is None:
            # Default: a quarter of what's left in the segment, capped.
            arena_bytes = min(DEFAULT_ARENA_BYTES, allocator.free // 4)
        self.arena_bytes = arena_bytes
        self.arena_base = allocator.alloc(arena_bytes)
        # Monotone per-sender completion flags (one uint64 per member);
        # written with seq+1, so no reset races across collectives. The
        # second array acknowledges that a landing zone has been drained.
        self.flags_base = allocator.alloc(8 * len(members))
        self.drain_base = allocator.alloc(8 * len(members))
        n = len(members)
        # When members' segment tops are aligned (the common, symmetric
        # case) everyone's bases are equal; otherwise the runtime exchanges
        # them and passes the tables in.
        self.peer_arena_bases = peer_arena_bases or tuple([self.arena_base] * n)
        self.peer_flag_bases = peer_flag_bases or tuple([self.flags_base] * n)
        # The drain array sits at the same (alignment-dependent) delta past
        # the flag array on every member.
        self.peer_drain_bases = tuple(
            b + (self.drain_base - self.flags_base) for b in self.peer_flag_bases
        )
        self.seq = 0
        self._arena_top = 0
        # AM-mode signal counters: (seq, round) -> count received.
        self._signals: dict[tuple[int, int], int] = {}
        if not defer_handler:
            self.register_handler()

    def register_handler(self) -> None:
        """Register this team's signal handler (deferred when the team id
        itself is still under collective agreement)."""
        self.gasnet.register_handler(
            TEAM_SIGNAL_HANDLER_BASE + self.team_id, self._on_signal
        )

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def allocator(self) -> "TeamExchange":
        return self  # backwards-compatible alias for .allocator.used checks

    @property
    def used(self) -> int:
        return self._arena_top

    # -- arena scratch (identical deltas on every member) --------------------

    def _arena_alloc(self, nbytes: int, align: int = 16) -> int:
        delta = (self._arena_top + align - 1) // align * align
        if delta + nbytes > self.arena_bytes:
            raise GasnetError(
                f"team arena exhausted: need {nbytes} at {delta}, "
                f"capacity {self.arena_bytes} (raise arena_bytes)"
            )
        self._arena_top = delta + nbytes
        return delta

    def _arena_release(self, marker: int) -> None:
        self._arena_top = marker

    def _local_arena(self, delta: int, nbytes: int) -> np.ndarray:
        start = self.arena_base + delta
        return self.gasnet.segment[start : start + nbytes]

    # -- AM-mode signalling ----------------------------------------------------

    def _on_signal(self, token, seq: int, round_no: int) -> None:
        key = (seq, round_no)
        self._signals[key] = self._signals.get(key, 0) + 1

    def _signal(self, peer_index: int, seq: int, round_no: int = 0) -> None:
        self.gasnet.am_request_short(
            self.members[peer_index],
            TEAM_SIGNAL_HANDLER_BASE + self.team_id,
            seq,
            round_no,
        )

    def _wait_signals(self, seq: int, count: int, round_no: int = 0) -> None:
        key = (seq, round_no)
        self.gasnet.block_until(
            lambda: self._signals.get(key, 0) >= count,
            f"team{self.team_id}.signals(seq={seq},round={round_no})",
        )
        del self._signals[key]

    # -- put-mode flag signalling -------------------------------------------------

    def _flags_view(self, base: int) -> np.ndarray:
        return self.gasnet.segment[base : base + 8 * self.size].view(np.uint64)

    def _put_flag(self, peer_index: int, marker: int, peer_bases: tuple[int, ...]) -> None:
        self.gasnet.put_nb(
            self.members[peer_index],
            peer_bases[peer_index] + 8 * self.my_index,
            np.array([marker], np.uint64),
        )

    def _wait_flags(self, marker: int, base: int) -> None:
        flags = self._flags_view(base)
        others = [i for i in range(self.size) if i != self.my_index]
        self.gasnet.block_until(
            lambda: all(flags[i] >= marker for i in others),
            f"team{self.team_id}.flags(marker={marker})",
        )

    def _next_seq(self) -> int:
        seq = self.seq
        self.seq += 1
        return seq

    # -- collectives ------------------------------------------------------------------

    @_collective
    def barrier(self) -> None:
        """Dissemination barrier from short AMs.

        Signals are round-tagged: a round-k signal may only satisfy a
        round-k wait, which the dissemination correctness proof requires
        (an untagged counting variant lets subgroups of early arrivers
        release each other before late ranks enter).
        """
        seq = self._next_seq()
        n = self.size
        if n == 1:
            return
        k = 1
        round_no = 0
        while k < n:
            self._signal((self.my_index + k) % n, seq, round_no)
            self._wait_signals(seq, 1, round_no)
            k <<= 1
            round_no += 1

    @_collective
    def broadcast(self, buf, root_index: int = 0) -> None:
        """Binomial broadcast: puts into the arena + AM signals."""
        seq = self._next_seq()
        arr = np.asarray(buf)
        flat = arr.reshape(-1).view(np.uint8)
        n = self.size
        if n == 1:
            return
        marker = self._arena_top
        land = self._arena_alloc(flat.nbytes)
        vr = (self.my_index - root_index) % n
        mask = 1
        while mask < n:
            if vr & mask:
                self._wait_signals(seq, 1)
                flat[...] = self._local_arena(land, flat.nbytes)
                _irhook.annotate(_irhook.CK_COPY, flat.nbytes)
                self.gasnet.ctx.proc.sleep(
                    self.gasnet.ctx.spec.copy_time(flat.nbytes)
                )
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vr + mask < n:
                child = ((vr + mask) + root_index) % n
                self.gasnet.put(
                    self.members[child], self.peer_arena_bases[child] + land, flat
                )
                self._signal(child, seq)
            mask >>= 1
        # Trailing barrier: nobody may start a collective that reuses this
        # arena region before every subtree has received its copy.
        self.barrier()
        self._arena_release(marker)

    @_collective
    def reduce(self, sendbuf, recvbuf, op, root_index: int = 0) -> None:
        """Gather-to-root into landing slots, then combine at the root.

        The flat (non-tree) structure is deliberately naive — the paper
        notes CAF-GASNet's hand-crafted collectives are "not as performant"
        as MPI's tuned trees.
        """
        seq = self._next_seq()
        send = np.asarray(sendbuf)
        flat = np.ascontiguousarray(send).reshape(-1)
        nbytes = flat.nbytes
        n = self.size
        marker = self._arena_top
        land = self._arena_alloc(nbytes * n)
        if self.my_index == root_index:
            if n > 1:
                self._wait_signals(seq, n - 1)
            acc = flat.copy()
            landing = self._local_arena(land, nbytes * n)
            for i in range(n):
                if i == root_index:
                    continue
                chunk = landing[i * nbytes : (i + 1) * nbytes].view(flat.dtype)
                acc = op(acc, chunk)
                _irhook.annotate(_irhook.CK_FLOPS, acc.size)
                self.gasnet.ctx.proc.sleep(self.gasnet.ctx.spec.flops_time(acc.size))
            recv = np.asarray(recvbuf)
            recv.reshape(-1)[...] = acc
            # Ack: peers may not reuse the arena before the root combined.
            for i in range(n):
                if i != root_index:
                    self._signal(i, seq, round_no=1)
        else:
            self.gasnet.put(
                self.members[root_index],
                self.peer_arena_bases[root_index] + land + self.my_index * nbytes,
                flat,
            )
            self._signal(root_index, seq)
            self._wait_signals(seq, 1, round_no=1)
        self._arena_release(marker)

    @_collective
    def allreduce(self, sendbuf, recvbuf, op, root_index: int = 0) -> None:
        recv = np.asarray(recvbuf)
        self.reduce(sendbuf, recv, op, root_index)
        self.broadcast(recv, root_index)

    @_collective
    def allgather(self, sendbuf, recvbuf) -> None:
        """Everyone puts its block into everyone's landing zone (naive)."""
        send = np.ascontiguousarray(np.asarray(sendbuf)).reshape(-1)
        recv = np.asarray(recvbuf)
        n = self.size
        nbytes = send.nbytes
        if recv.shape[0] != n:
            raise GasnetError(f"allgather recvbuf needs leading dimension {n}")
        marker = self._arena_top
        land = self._arena_alloc(nbytes * n)
        seq = self._exchange(lambda peer: (send, land + self.my_index * nbytes))
        landing = self._local_arena(land, nbytes * n)
        for i in range(n):
            if i == self.my_index:
                recv[i] = np.asarray(sendbuf).reshape(recv[i].shape)
            else:
                recv[i] = (
                    landing[i * nbytes : (i + 1) * nbytes]
                    .view(recv.dtype)
                    .reshape(recv[i].shape)
                )
        # Unpack cost: landing zone -> user buffer (MPI's collectives
        # receive in place and skip this — part of why they win).
        _irhook.annotate(_irhook.CK_COPY, nbytes * n)
        self.gasnet.ctx.proc.sleep(self.gasnet.ctx.spec.copy_time(nbytes * n))
        self._finish_exchange(seq)
        self._arena_release(marker)

    @_collective
    def alltoall(self, sendbuf, recvbuf) -> None:
        """Naive all-to-all: put chunk j to peer j in ascending rank order.

        Every image starts at peer 0 and walks up, so low-index peers
        absorb an incast burst; each chunk also costs a completion signal.
        This is the hand-rolled collective whose cost dominates
        CAF-GASNet's FFT (Figure 8).
        """
        send = np.asarray(sendbuf)
        recv = np.asarray(recvbuf)
        n = self.size
        if send.shape[0] != n or recv.shape[0] != n:
            raise GasnetError(f"alltoall buffers need leading dimension {n}")
        chunk0 = np.ascontiguousarray(send[0]).reshape(-1).view(np.uint8)
        nbytes = chunk0.nbytes
        marker = self._arena_top
        land = self._arena_alloc(nbytes * n)
        seq = self._exchange(
            lambda peer: (
                np.ascontiguousarray(send[peer]).reshape(-1).view(np.uint8),
                land + self.my_index * nbytes,
            ),
        )
        recv[self.my_index] = send[self.my_index]
        landing = self._local_arena(land, nbytes * n)
        for i in range(n):
            if i != self.my_index:
                recv[i] = (
                    landing[i * nbytes : (i + 1) * nbytes]
                    .view(recv.dtype)
                    .reshape(recv[i].shape)
                )
        # Unpack cost (see allgather): landing zone -> user buffer.
        _irhook.annotate(_irhook.CK_COPY, nbytes * n)
        self.gasnet.ctx.proc.sleep(self.gasnet.ctx.spec.copy_time(nbytes * n))
        self._finish_exchange(seq)
        self._arena_release(marker)

    def _exchange(self, chunk_for_peer) -> int:
        """Common body of allgather/alltoall: put + signal every peer in
        naive ascending order, then wait for every peer's signal. Returns
        the collective's sequence number for :meth:`_finish_exchange`."""
        seq = self._next_seq()
        n = self.size
        mode = self.gasnet.ctx.spec.gasnet_coll_signal
        if mode == "put":
            marker_val = seq + 1
            for j in range(n):
                if j == self.my_index:
                    continue
                data, delta = chunk_for_peer(j)
                self.gasnet.put_nb(
                    self.members[j], self.peer_arena_bases[j] + delta, data
                )
                # Pair-FIFO delivery makes the flag arrive after the data.
                self._put_flag(j, marker_val, self.peer_flag_bases)
            if n > 1:
                self._wait_flags(marker_val, self.flags_base)
        elif mode == "am":
            handles = []
            for j in range(n):
                if j == self.my_index:
                    continue
                data, delta = chunk_for_peer(j)
                handles.append(
                    self.gasnet.put_nb(
                        self.members[j], self.peer_arena_bases[j] + delta, data
                    )
                )
            self.gasnet.wait_syncnb_all(handles)
            for j in range(n):
                if j != self.my_index:
                    self._signal(j, seq)
            if n > 1:
                self._wait_signals(seq, n - 1)
        else:
            raise GasnetError(f"unknown gasnet_coll_signal mode {mode!r}")
        return seq

    def _finish_exchange(self, seq: int) -> None:
        """Drain round: nobody's landing zone may be overwritten (by a
        subsequent collective reusing the arena) until everyone has copied
        theirs out."""
        n = self.size
        if n == 1:
            return
        mode = self.gasnet.ctx.spec.gasnet_coll_signal
        if mode == "put":
            marker_val = seq + 1
            for j in range(n):
                if j != self.my_index:
                    self._put_flag(j, marker_val, self.peer_drain_bases)
            self._wait_flags(marker_val, self.drain_base)
        else:
            for j in range(n):
                if j != self.my_index:
                    self._signal(j, seq, round_no=1)
            self._wait_signals(seq, n - 1, round_no=1)
