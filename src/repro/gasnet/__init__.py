"""GASNet subset: the original CAF 2.0 communication substrate.

Implements the pieces of the GASNet core and extended APIs the paper's
CAF-GASNet runtime uses (§2.1, §3.2):

* a registered memory **segment** per rank,
* **Active Messages** (short / medium / long) with handler dispatch driven
  by target-side polling — the progress requirement behind the paper's
  Figure 2 deadlock scenario,
* one-sided RDMA **put/get** on segment addresses with completion handles
  (lower per-op software overhead than MPICH RMA, per the paper's Fusion
  RandomAccess analysis),
* the **SRQ** behaviour: at ``spec.gasnet_srq_threshold`` processes GASNet
  switches to a Shared Receive Queue to save memory, which slows message
  delivery (the Figure 3 performance drop; ``NOSRQ`` disables it),
* *no collectives* — CAF-GASNet hand-rolls them
  (:mod:`repro.gasnet.collectives`), which is why its all-to-all loses to
  ``MPI_ALLTOALL`` in the FFT benchmark (Figures 6-8).
"""

from repro.gasnet.core import (
    AM_MAX_ARGS,
    AM_MAX_MEDIUM,
    GasnetRank,
    GasnetWorld,
    Handle,
    Token,
)

__all__ = [
    "AM_MAX_ARGS",
    "AM_MAX_MEDIUM",
    "GasnetRank",
    "GasnetWorld",
    "Handle",
    "Token",
]
