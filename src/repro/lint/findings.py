"""Findings and the per-run lint report.

Rendering goes through :mod:`repro.diagnostics` so a static finding
prints in the same headline-plus-labeled-block shape as a dynamic
sanitizer diagnostic, with ``file.py:NN`` sites throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import format_block, source_site, summary_line
from repro.lint.rules import RULES


@dataclass
class Finding:
    """One static violation: rule ID plus the offending source location."""

    rule: str
    path: str
    line: int
    col: int
    func: str
    message: str
    #: extra labeled locations, e.g. ("put", 26, "co.write(1, ...)")
    related: list[tuple[str, int, str]] = field(default_factory=list)
    suppressed: bool = False

    @property
    def site(self) -> str:
        return source_site(self.path, self.line, self.func)

    def format(self) -> str:
        rule = RULES[self.rule]
        details: list[tuple[str, object]] = [("rule", f"{rule.name}" + (f" ({rule.paper})" if rule.paper else ""))]
        for label, line, text in self.related:
            where = source_site(self.path, line)
            details.append((label, f"{where}: {text}" if text else where))
        details.append(("fix", rule.fix))
        if self.suppressed:
            details.append(("note", "suppressed by # repro: lint-ignore"))
        head = f"[{self.rule}] {self.site}: {self.message}"
        return format_block(head, details)


@dataclass
class LintReport:
    """All findings from one lint invocation over a set of files."""

    nfiles: int = 0
    findings: list[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def clean(self) -> bool:
        return not self.active

    def rules(self) -> set[str]:
        return {f.rule for f in self.active}

    def to_text(self, *, show_suppressed: bool = False) -> str:
        shown = self.findings if show_suppressed else self.active
        shown = sorted(shown, key=lambda f: (f.path, f.line, f.rule))
        scope = f"{self.nfiles} file(s)"
        head = summary_line("lint", len(shown), scope)
        return "\n".join([head] + [f.format() for f in shown])
