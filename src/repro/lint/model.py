"""The per-module static model the lint passes consume.

No execution, no imports of the linted code: everything is derived from
the AST. Three ingredients:

* **Classification tables** mapping method names onto the repo's CAF /
  MPI / GASNet protocol vocabulary (collectives, puts/gets, syncs,
  blocking calls).
* **Handle tracking**: flow-insensitive tagging of names (and
  ``self.attr`` attributes and list containers) assigned from
  ``allocate_coarray`` / ``allocate_events`` / ``win_allocate*`` /
  ``img.mpi()`` / ``GasnetWorld`` so rules fire only on receivers that
  are actually protocol objects — a file object's ``.write`` never
  trips the put rules.
* **Rank taint**: names derived (transitively) from ``img.rank`` /
  ``this_image()``, used to decide whether a branch condition is
  rank-dependent. ``nranks``/``num_images`` are uniform across images
  and deliberately do *not* taint.

The model is intraprocedural and conservative by design: when the linter
cannot see a fact it stays quiet. Cross-function protocols (a put in one
method completed by an event wait in another) are the dynamic
sanitizer's job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

# -- protocol vocabulary ---------------------------------------------------------------
#
# The classification tables live in repro.ir.ops — one shared vocabulary
# for the static op streams extracted here and the dynamic op-stream IR
# recorded from live runs — and are re-exported under their historical
# names for the lint passes (and any external user of this module).

from repro.ir.ops import (  # noqa: F401  (re-exported vocabulary)
    ASYNC_METHODS,
    BLOCKING_METHODS,
    COLLECTIVE_METHODS,
    GET_METHODS,
    MPI_BLOCKING_METHODS,
    PUT_METHODS,
    SYNC_METHODS,
    WINDOW_RMA_METHODS,
)

#: Allocator call names -> handle tag.
_ALLOCATORS = {
    "allocate_coarray": "coarray",
    "allocate_events": "event",
    "win_allocate": "window",
    "win_allocate_shared": "window",
    "win_create_dynamic": "window",
}

def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return ""


def target_key(node: ast.AST) -> str | None:
    """Canonical key for an assignment target / receiver root.

    ``Name`` -> ``"x"``; ``self.attr`` -> ``"self.attr"``; anything else
    (arbitrary attributes, subscripts of expressions) is untracked.
    """
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def receiver_key(call: ast.Call) -> str | None:
    """Tracking key for a method call's receiver, peeling subscripts
    (so ``land[d].write`` resolves to the tracked container ``land``)."""
    if not isinstance(call.func, ast.Attribute):
        return None
    value: ast.AST = call.func.value
    while isinstance(value, ast.Subscript):
        value = value.value
    return target_key(value)


def method_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


@dataclass
class FunctionInfo:
    """One function (or method, or nested def) in the module."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    cls: str | None = None  # enclosing class name, if a method
    _ops: "list[Op] | None" = None  # memoized linear op stream


@dataclass
class ModuleModel:
    path: str
    tree: ast.Module
    functions: list[FunctionInfo] = field(default_factory=list)
    #: tracked handle tags: name/self.attr -> "coarray"|"event"|"window"|"mpi"|"gasnet"
    tags: dict[str, str] = field(default_factory=dict)
    rank_tainted: set[str] = field(default_factory=set)
    #: function names registered as GASNet AM handlers.
    am_handlers: set[str] = field(default_factory=set)
    #: event vars that escape into call arguments (runtime pairs them).
    escaped_events: set[str] = field(default_factory=set)

    def tag(self, key: str | None) -> str | None:
        return self.tags.get(key) if key else None

    def ops_for(self, fn: FunctionInfo) -> "list[Op]":
        """Linearized op stream for a function, computed once and shared
        by every pass that scans program order."""
        if fn._ops is None:
            fn._ops = collect_ops(fn.node, self)
        return fn._ops


def _assignment_pairs(tree: ast.Module):
    """Yield (target_keys, value) for every assignment-like statement."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            keys = [k for t in node.targets for k in _flatten_targets(t)]
            yield keys, node.value
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and node.value is not None:
            key = target_key(node.target)
            yield ([key] if key else []), node.value


def _flatten_targets(t: ast.AST) -> list[str]:
    if isinstance(t, (ast.Tuple, ast.List)):
        out: list[str] = []
        for el in t.elts:
            out.extend(_flatten_targets(el))
        return out
    key = target_key(t)
    return [key] if key else []


@dataclass
class _AssignFacts:
    """Everything the fixpoint needs about one assignment, precomputed
    in a single walk of its value expression."""

    keys: list[str]
    static_tag: str | None  # from allocators / COMM_WORLD / world classes
    alias_key: str | None  # x = y / y[i] / self.y: inherit y's tag
    mentioned: set[str]  # names & self.attrs the value reads (taint prop)
    has_rank: bool  # value literally touches .rank / this_image()


def _value_facts(keys: list[str], value: ast.AST) -> _AssignFacts:
    alias: ast.AST = value
    while isinstance(alias, ast.Subscript):
        alias = alias.value
    alias_key = target_key(alias)

    static_tag: str | None = None
    mentioned: set[str] = set()
    has_rank = False
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            name = method_name(node)
            if static_tag is None and name in _ALLOCATORS:
                static_tag = _ALLOCATORS[name]
            elif static_tag is None and name == "mpi":
                static_tag = "mpi"
            elif name == "this_image":
                has_rank = True
        elif isinstance(node, ast.Attribute):
            if node.attr == "rank":
                has_rank = True
            elif static_tag is None and node.attr == "COMM_WORLD":
                static_tag = "mpi"
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                mentioned.add(f"self.{node.attr}")
        elif isinstance(node, ast.Name):
            mentioned.add(node.id)
            if static_tag is None and node.id == "MpiWorld":
                static_tag = "mpi"
            elif static_tag is None and node.id == "GasnetWorld":
                static_tag = "gasnet"
    return _AssignFacts(keys, static_tag, alias_key, mentioned, has_rank)


def _mentions_rank(value: ast.AST, tainted: set[str]) -> bool:
    for node in ast.walk(value):
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            return True
        if isinstance(node, ast.Call) and method_name(node) == "this_image":
            return True
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and f"self.{node.attr}" in tainted
        ):
            return True
    return False


def is_rank_dependent(test: ast.AST, model: ModuleModel) -> bool:
    """Does this branch condition observe the image index (transitively)?"""
    return _mentions_rank(test, model.rank_tainted)


def is_rank_literal(test: ast.AST) -> bool:
    """Stricter form: the condition itself mentions ``.rank``/``this_image``.

    Used by the early-return sub-rule of CAF001, where taint would be too
    eager (any value derived from per-image data is tainted)."""
    return _mentions_rank(test, set())


def _collect_functions(model: ModuleModel) -> None:
    def visit(node: ast.AST, prefix: str, cls: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                model.functions.append(FunctionInfo(child, qual, cls))
                visit(child, f"{qual}.", cls)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.", child.name)
            else:
                visit(child, prefix, cls)

    visit(model.tree, "", None)


def _collect_am_handlers(model: ModuleModel) -> None:
    for node in ast.walk(model.tree):
        if not (isinstance(node, ast.Call) and method_name(node) == "register_handler"):
            continue
        if len(node.args) < 2:
            continue
        fn = node.args[1]
        if isinstance(fn, ast.Name):
            model.am_handlers.add(fn.id)
        elif isinstance(fn, ast.Attribute):
            model.am_handlers.add(fn.attr)


def _collect_escapes(model: ModuleModel) -> None:
    """Event vars passed *into* calls (``dest_event=(ev, 0)``, helper
    functions, async collectives) are paired by code the linter cannot
    see; pairing rules must not fire on them."""
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call):
            continue
        mname = method_name(node)
        recv = receiver_key(node)
        for sub in list(node.args) + [kw.value for kw in node.keywords]:
            for leaf in ast.walk(sub):
                key = target_key(leaf)
                if key and model.tags.get(key) == "event":
                    # the receiver of its own notify/wait is not an escape
                    if not (key == recv and mname in ("notify", "wait", "trywait")):
                        model.escaped_events.add(key)


def build_model(tree: ast.Module, path: str) -> ModuleModel:
    model = ModuleModel(path=path, tree=tree)
    _collect_functions(model)

    # Fixpoint over assignments: handle tags and rank taint both
    # propagate through aliasing. Facts about each assignment's value are
    # extracted once; the sweeps themselves are cheap set operations.
    facts = [
        _value_facts(keys, value)
        for keys, value in _assignment_pairs(tree)
        if keys
    ]
    for _ in range(4):
        changed = False
        for fact in facts:
            tag = fact.static_tag
            if tag is None and fact.alias_key:
                tag = model.tags.get(fact.alias_key)
            if tag:
                for key in fact.keys:
                    if model.tags.get(key) != tag:
                        model.tags[key] = tag
                        changed = True
            if fact.has_rank or (fact.mentioned & model.rank_tainted):
                for key in fact.keys:
                    if key not in model.rank_tainted:
                        model.rank_tainted.add(key)
                        changed = True
        if not changed:
            break

    _collect_am_handlers(model)
    _collect_escapes(model)
    return model


# -- linearized operation stream -------------------------------------------------------


@dataclass
class Op:
    """One protocol-relevant action in a function, in program order.

    ``kind`` is ``call`` (a method/function call), ``local`` (a touch of
    a tracked coarray's ``.local`` view), ``return``, or the synthetic
    ``finish_enter``/``finish_exit`` boundaries of a ``with finish()``
    block. ``rank_dep`` records whether the op sits under any
    rank-dependent branch.
    """

    kind: str
    node: ast.AST
    method: str = ""
    recv: str | None = None
    recv_text: str = ""
    rank_dep: bool = False
    call: ast.Call | None = None


def _expr_ops(expr: ast.AST, model: ModuleModel, rank_dep: bool, out: list[Op]) -> None:
    """Emit ops for one expression subtree, children before parents so the
    stream approximates evaluation order (args before the call)."""
    if isinstance(expr, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
        return  # deferred bodies do not execute here
    for child in ast.iter_child_nodes(expr):
        _expr_ops(child, model, rank_dep, out)
    if isinstance(expr, ast.Attribute) and expr.attr == "local":
        recv = target_key(_peel_subscripts(expr.value))
        if model.tag(recv) == "coarray":
            out.append(Op("local", expr, recv=recv, rank_dep=rank_dep))
    elif isinstance(expr, ast.Call):
        name = method_name(expr)
        if name is None:
            return
        recv = receiver_key(expr)
        recv_text = ""
        if isinstance(expr.func, ast.Attribute):
            recv_text = _unparse(expr.func.value)
        out.append(
            Op(
                "call",
                expr,
                method=name,
                recv=recv,
                recv_text=recv_text,
                rank_dep=rank_dep,
                call=expr,
            )
        )


def _peel_subscripts(node: ast.AST) -> ast.AST:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _is_finish_call(expr: ast.AST) -> bool:
    return isinstance(expr, ast.Call) and method_name(expr) == "finish"


def collect_ops(fn: ast.FunctionDef | ast.AsyncFunctionDef, model: ModuleModel) -> list[Op]:
    """Flatten a function body into program-order ops.

    Branch structure is collapsed: ops from every arm appear in source
    order, so a sync in *either* arm counts as a sync for the hazards
    scanned over this stream. That is deliberately conservative (no false
    positives from paths the linter cannot prove are taken); the
    collective-matching pass looks at branch arms separately.
    """
    ops: list[Op] = []

    def walk(stmts: list[ast.stmt], depth: int) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                _expr_ops(stmt.test, model, depth > 0, ops)
                inner = depth + 1 if is_rank_dependent(stmt.test, model) else depth
                walk(stmt.body, inner)
                walk(stmt.orelse, inner)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                finish = any(_is_finish_call(item.context_expr) for item in stmt.items)
                for item in stmt.items:
                    _expr_ops(item.context_expr, model, depth > 0, ops)
                if finish:
                    ops.append(Op("finish_enter", stmt, method="finish", rank_dep=depth > 0))
                walk(stmt.body, depth)
                if finish:
                    ops.append(Op("finish_exit", stmt, method="finish", rank_dep=depth > 0))
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                _expr_ops(stmt.iter, model, depth > 0, ops)
                walk(stmt.body, depth)
                walk(stmt.orelse, depth)
            elif isinstance(stmt, ast.While):
                _expr_ops(stmt.test, model, depth > 0, ops)
                walk(stmt.body, depth)
                walk(stmt.orelse, depth)
            elif isinstance(stmt, ast.Try):
                walk(stmt.body, depth)
                for handler in stmt.handlers:
                    walk(handler.body, depth)
                walk(stmt.orelse, depth)
                walk(stmt.finalbody, depth)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    _expr_ops(stmt.value, model, depth > 0, ops)
                ops.append(Op("return", stmt, rank_dep=depth > 0))
            else:
                for child in ast.iter_child_nodes(stmt):
                    _expr_ops(child, model, depth > 0, ops)

    walk(fn.body, 0)
    return ops
