"""Inline suppression comments.

``# repro: lint-ignore[CAF006]`` on the flagged line silences that rule
there; a comma list (``lint-ignore[CAF001,CAF002]``) silences several,
and a bare ``# repro: lint-ignore`` silences every rule on the line.
Suppressed findings are kept (marked, not dropped) so ``--no-ignore``
can audit them — the one intentional Fig. 2 finding in
``examples/deadlock_demo.py`` is visible that way.
"""

from __future__ import annotations

import io
import re
import tokenize

_PATTERN = re.compile(r"#\s*repro:\s*lint-ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

#: Sentinel meaning "all rules suppressed on this line".
ALL_RULES = "*"


def suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of suppressed rule IDs (or {ALL_RULES})."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(tok.string)
            if not match:
                continue
            rules = match.group("rules")
            line = tok.start[0]
            if rules is None:
                out.setdefault(line, set()).add(ALL_RULES)
            else:
                ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
                out.setdefault(line, set()).update(ids)
    except tokenize.TokenError:  # pragma: no cover - half-written files
        pass
    return out


def is_suppressed(rule: str, line: int, table: dict[int, set[str]]) -> bool:
    entry = table.get(line)
    if not entry:
        return False
    return ALL_RULES in entry or rule in entry
