"""CLI: ``python -m repro.lint <paths...>``.

Exits 1 when any unsuppressed finding remains, 0 on a clean tree — so CI
can gate on it. ``--no-ignore`` also counts suppressed findings (used to
assert that ``examples/deadlock_demo.py`` carries exactly the one
intentional Fig. 2 finding).
"""

from __future__ import annotations

import argparse

from repro.lint.engine import lint_paths
from repro.lint.rules import RULES


def _list_rules() -> str:
    lines = ["repro.lint rules:"]
    for rule in RULES.values():
        paper = f"  [{rule.paper}]" if rule.paper else ""
        lines.append(f"  {rule.id}  {rule.name}{paper}")
        lines.append(f"         {rule.summary}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static CAF/MPI/GASNet protocol checker (no execution).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule IDs to report (e.g. CAF001,CAF006)",
    )
    parser.add_argument(
        "--no-ignore",
        action="store_true",
        help="count findings suppressed by # repro: lint-ignore as violations",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule registry")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in select if r.upper() not in RULES]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    report = lint_paths(args.paths, select=select)
    print(report.to_text(show_suppressed=args.no_ignore))
    bad = report.findings if args.no_ignore else report.active
    return 1 if bad else 0
