"""CLI: ``python -m repro.lint <paths...>``.

Exits 1 when any unsuppressed finding remains, 0 on a clean tree — so CI
can gate on it. ``--no-ignore`` also counts suppressed findings (used to
assert that ``examples/deadlock_demo.py`` carries exactly the one
intentional Fig. 2 finding). ``--format sarif`` emits a SARIF 2.1.0 log
for code-scanning upload; ``--no-stream`` skips the symbolic op-stream
tier; ``--predict`` prints each entry point's pre-run communication
prediction as JSON instead of linting.
"""

from __future__ import annotations

import argparse
import json

from repro.lint.engine import iter_python_files, lint_paths
from repro.lint.rules import RULES


def _list_rules() -> str:
    lines = ["repro.lint rules:"]
    for rule in RULES.values():
        paper = f"  [{rule.paper}]" if rule.paper else ""
        lines.append(f"  {rule.id}  {rule.name}{paper}")
        lines.append(f"         {rule.summary}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static CAF/MPI/GASNet protocol checker (no execution).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule IDs to report (e.g. CAF001,CAF006)",
    )
    parser.add_argument(
        "--no-ignore",
        action="store_true",
        help="count findings suppressed by # repro: lint-ignore as violations",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule registry")
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="output format (sarif: SARIF 2.1.0 for code-scanning upload)",
    )
    parser.add_argument(
        "--no-stream",
        action="store_true",
        help="skip the symbolic op-stream tier (CAF011+); syntactic passes only",
    )
    parser.add_argument(
        "--predict",
        action="store_true",
        help="print each entry point's static communication prediction as "
        "JSON (per-kind calls/bytes, P x P comm matrix) instead of linting",
    )
    parser.add_argument(
        "--nranks",
        type=int,
        default=4,
        help="image count for --predict (default 4)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in select if r.upper() not in RULES]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    if args.predict:
        return _predict(args)

    report = lint_paths(args.paths, select=select, stream=not args.no_stream)
    if args.format == "sarif":
        from repro.lint.sarif import to_sarif_text

        print(to_sarif_text(report, show_suppressed=args.no_ignore))
    else:
        print(report.to_text(show_suppressed=args.no_ignore))
    bad = report.findings if args.no_ignore else report.active
    return 1 if bad else 0


def _predict(args: argparse.Namespace) -> int:
    from repro.lint.stream import predict_file

    out = []
    for path in iter_python_files(args.paths):
        try:
            for pred in predict_file(path, nranks=args.nranks):
                out.append(pred.to_dict())
        except SyntaxError:
            continue
    print(json.dumps(out, indent=2))
    return 0
