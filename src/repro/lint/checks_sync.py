"""Sync-discipline rules: CAF002/003 (put/async completion), CAF004/005
(event pairing), CAF008 (finish misuse).

CAF002/003 scan the linearized op stream of each function: a put leaves a
hazard that only a synchronization point (``sync_all``, ``cofence``,
``sync_images``, a collective, an event ``wait``, a flush, or a
``finish`` boundary) clears. Event pairing is module-wide and skips
events that *escape* into call arguments — those are paired by code the
linter cannot see (async-collective completion events, helper
functions).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.model import (
    ASYNC_METHODS,
    PUT_METHODS,
    SYNC_METHODS,
    FunctionInfo,
    ModuleModel,
    Op,
    method_name,
    target_key,
)


def _snippet(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return ""
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _is_sync(op: Op) -> bool:
    if op.kind in ("finish_enter", "finish_exit"):
        return True
    return op.kind == "call" and op.method in SYNC_METHODS


def _has_completion_event(call: ast.Call | None) -> bool:
    return call is not None and any(
        kw.arg in ("src_event", "dest_event") for kw in call.keywords
    )


def check_sync_discipline(fn: FunctionInfo, model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    ops = model.ops_for(fn)

    pending_puts: dict[str, Op] = {}  # coarray var -> first unsynced put
    pending_async: list[Op] = []

    for op in ops:
        if _is_sync(op):
            pending_puts.clear()
            pending_async.clear()
            continue
        if op.kind == "call" and model.tag(op.recv) == "coarray":
            if op.method in PUT_METHODS:
                pending_puts.setdefault(op.recv or "", op)
            if op.method in ASYNC_METHODS and not _has_completion_event(op.call):
                pending_async.append(op)
            continue
        if op.kind == "local" and op.recv in pending_puts:
            put = pending_puts[op.recv]
            findings.append(
                Finding(
                    rule="CAF002",
                    path=model.path,
                    line=op.node.lineno,
                    col=op.node.col_offset,
                    func=fn.qualname,
                    message=(
                        f"local view of coarray '{op.recv}' accessed after the put "
                        f"at line {put.node.lineno} with no synchronization in "
                        f"between: under SPMD symmetry the target image's local "
                        f"access races the origin's put"
                    ),
                    related=[("put", put.node.lineno, _snippet(put.node))],
                )
            )
            # one report per put site; further reads of the same stale
            # coarray add nothing.
            del pending_puts[op.recv]

    for op in pending_async:
        findings.append(
            Finding(
                rule="CAF003",
                path=model.path,
                line=op.node.lineno,
                col=op.node.col_offset,
                func=fn.qualname,
                message=(
                    f"{op.method}() on coarray '{op.recv}' has no completion "
                    f"event and no cofence/sync before the function ends: "
                    f"local buffer reuse and remote visibility are unordered"
                ),
            )
        )

    return findings


def check_event_pairing(model: ModuleModel) -> list[Finding]:
    """CAF004/CAF005: module-wide notify/wait pairing per event variable."""
    notifies: dict[str, list[ast.Call]] = {}
    waits: dict[str, list[ast.Call]] = {}
    bounded_waits: dict[str, list[ast.Call]] = {}

    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        recv = target_key(_peel(node.func.value))
        if not recv or model.tags.get(recv) != "event":
            continue
        name = node.func.attr
        if name == "notify":
            notifies.setdefault(recv, []).append(node)
        elif name in ("wait", "trywait"):
            timed = name == "trywait" or any(kw.arg == "timeout" for kw in node.keywords)
            (bounded_waits if timed else waits).setdefault(recv, []).append(node)

    findings: list[Finding] = []
    for recv, calls in notifies.items():
        if recv in model.escaped_events:
            continue
        if recv in waits or recv in bounded_waits:
            continue
        call = calls[0]
        findings.append(
            Finding(
                rule="CAF004",
                path=model.path,
                line=call.lineno,
                col=call.col_offset,
                func="",
                message=(
                    f"event '{recv}' is notified but never waited anywhere in "
                    f"this module: the notification is lost"
                ),
            )
        )
    for recv, calls in waits.items():
        if recv in model.escaped_events:
            continue
        if recv in notifies:
            continue
        call = calls[0]
        findings.append(
            Finding(
                rule="CAF005",
                path=model.path,
                line=call.lineno,
                col=call.col_offset,
                func="",
                message=(
                    f"unbounded wait on event '{recv}' which nothing in this "
                    f"module ever notifies: every image blocks here forever"
                ),
            )
        )
    return findings


def _peel(node: ast.AST) -> ast.AST:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def check_finish_usage(model: ModuleModel) -> list[Finding]:
    """CAF008: ``finish()`` must be entered as a context manager."""
    with_exprs: set[int] = set()
    with_names: set[str] = set()
    for node in ast.walk(model.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                with_exprs.add(id(item.context_expr))
                key = target_key(item.context_expr)
                if key:
                    with_names.add(key)

    findings: list[Finding] = []
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call) or method_name(node) != "finish":
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if id(node) in with_exprs:
            continue
        # `fb = img.finish()` later entered via `with fb:` is fine.
        assigned = _assigned_name_for(node, model.tree)
        if assigned and assigned in with_names:
            continue
        findings.append(
            Finding(
                rule="CAF008",
                path=model.path,
                line=node.lineno,
                col=node.col_offset,
                func="",
                message=(
                    "finish() creates a collective block but is never entered: "
                    "without `with`, termination detection of spawned activity "
                    "never runs"
                ),
            )
        )
    return findings


def _assigned_name_for(call: ast.Call, tree: ast.Module) -> str | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and node.value is call:
            for target in node.targets:
                key = target_key(target)
                if key:
                    return key
    return None
