"""MPI-3 RMA epoch rules: CAF009 (RMA outside an epoch), CAF010
(lock/lock_all epoch never closed).

Scanned over the linearized op stream, per tracked window variable. The
model is the passive-target discipline the paper's CAF-MPI runtime uses:
``lock_all`` at window creation, flush-based completion, ``unlock_all``
at teardown — plus the active-target ``fence`` form. A ``fence`` opens
epochs for the rest of the function (fence-to-fence phases are all valid
epochs), which keeps the rule quiet on fence-based code.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.model import (
    WINDOW_RMA_METHODS,
    FunctionInfo,
    ModuleModel,
)

_OPENERS = ("lock", "lock_all")
_CLOSERS = ("unlock", "unlock_all")


def check_epochs(fn: FunctionInfo, model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    ops = model.ops_for(fn)

    depth: dict[str, int] = {}
    fenced: dict[str, bool] = {}
    open_site: dict[str, ast.AST] = {}

    for op in ops:
        if op.kind != "call" or model.tag(op.recv) != "window":
            continue
        recv = op.recv or ""
        if op.method in _OPENERS:
            depth[recv] = depth.get(recv, 0) + 1
            open_site.setdefault(recv, op.node)
        elif op.method in _CLOSERS:
            depth[recv] = max(depth.get(recv, 0) - 1, 0)
            if depth[recv] == 0:
                open_site.pop(recv, None)
        elif op.method == "fence":
            fenced[recv] = True
        elif op.method in WINDOW_RMA_METHODS:
            if depth.get(recv, 0) == 0 and not fenced.get(recv, False):
                findings.append(
                    Finding(
                        rule="CAF009",
                        path=model.path,
                        line=op.node.lineno,
                        col=op.node.col_offset,
                        func=fn.qualname,
                        message=(
                            f"window RMA {op.method}() on '{recv}' with no "
                            f"lock/lock_all/fence epoch open at the call: the "
                            f"operation's completion and memory semantics are "
                            f"undefined outside an epoch"
                        ),
                    )
                )

    for recv, site in open_site.items():
        if depth.get(recv, 0) > 0:
            findings.append(
                Finding(
                    rule="CAF010",
                    path=model.path,
                    line=site.lineno,
                    col=site.col_offset,
                    func=fn.qualname,
                    message=(
                        f"epoch opened on window '{recv}' here is still open "
                        f"when the function ends: remote completion is never "
                        f"forced (missing unlock/unlock_all)"
                    ),
                )
            )

    return findings
