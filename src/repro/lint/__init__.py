"""repro.lint — static CAF/MPI/GASNet protocol checker.

AST-based, no program execution: the compile-time sibling of the dynamic
``repro.sanitizer``. Catches the paper's protocol hazards before a run:

* **CAF001** collectives under rank-dependent branches without a match
  on the other arm (and rank-dependent early returns that skip them);
* **CAF002/003** puts read locally (or async ops abandoned) with no
  synchronization in between — Figs. 3/4 discipline;
* **CAF004/005** event notify/wait pairing;
* **CAF006** the Figure 2 dual-runtime deadlock: blocking into one
  runtime while the other's traffic still needs progress;
* **CAF007** blocking calls inside GASNet active-message handlers;
* **CAF008** ``finish()`` not entered as a context manager;
* **CAF009/010** window RMA epoch discipline.

Suppress a known finding inline with ``# repro: lint-ignore[CAF006]``.
CLI: ``python -m repro.lint <paths>`` (exit 1 on findings).
"""

from __future__ import annotations

from repro.lint.engine import lint_file, lint_paths, lint_source
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import PROTOCOL_RULES, RULES, Rule

__all__ = [
    "Finding",
    "LintReport",
    "PROTOCOL_RULES",
    "RULES",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
]
