"""Cross-rank matching over compiled per-rank op streams.

Three deadlock analyses on one entry point's :class:`EntryStreams`
(compiled at a concrete probe image count, default P=4):

* **Dual-runtime (Fig. 2)** — a rank holds a pending CAF put (needs
  target-side AM progress to complete) and then blocks inside a raw
  MPI/GASNet call before any CAF synchronization point.  Because the
  streams are compiled interprocedurally and loops are unrolled, this
  catches the put-in-helper / barrier-in-caller and loop-carried
  variants the per-function syntactic CAF006 scan cannot see.
* **Event starvation** — for each (event array, slot), notifies
  *delivered to* each rank are counted against waits *consumed at* that
  rank; more consumption than delivery hangs.  Only the hang direction
  is reported: extra notifies are drained at teardown and are
  legitimate.
* **Recv starvation** — raw-MPI two-sided accounting: posted blocking
  recvs from a concrete source against sends toward the receiver.

Accounting soundness: event/recv counting is skipped whenever any rank
stream is truncated, aborted, or carries unresolved-control-flow
warnings (the Fig. 2 scan is prefix-sound and always runs).  Events that
escape into unresolvable calls, carry unknown slots/targets, or have
tentative ops are skipped individually.  Timed waits and ``trywait``
cannot hang and never count.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .interp import EntryStreams, StreamOp


@dataclass
class MatchProblem:
    """One cross-rank protocol problem found by the symbolic matcher."""

    kind: str  # "dual-runtime" | "event-starvation" | "recv-starvation"
    line: int
    col: int
    func: str
    message: str
    related: list[tuple[int, str]] = field(default_factory=list)


def analyze_entry(entry: EntryStreams) -> list[MatchProblem]:
    problems = list(_fig2_scan(entry))
    if all(rs.sound_for_accounting for rs in entry.ranks):
        problems.extend(_event_accounting(entry))
        problems.extend(_recv_accounting(entry))
    return problems


# -- Fig. 2: pending CAF put + blocking into a foreign runtime ------------


def _fig2_scan(entry: EntryStreams):
    seen: set[tuple[int, int]] = set()
    for rs in entry.ranks:
        pending: list[StreamOp] = []
        for op in rs.ops:
            if op.is_sync:
                # A CAF synchronization point completes outstanding CAF
                # traffic (conservatively also under unresolved guards —
                # a maybe-sync must silence, not fire, the rule).
                pending.clear()
                continue
            if op.is_caf_put and not op.tentative:
                pending.append(op)
                continue
            if op.is_mpi_block and pending and not op.tentative:
                put = pending[0]
                key = (put.line, op.line)
                if key in seen:
                    pending.clear()
                    continue
                seen.add(key)
                if _peer_also_blocks(entry, put, op):
                    yield MatchProblem(
                        kind="dual-runtime",
                        line=op.line,
                        col=op.col,
                        func=op.func,
                        message=(
                            f"rank {rs.rank} blocks in {op.kind} while its CAF "
                            f"{put.method} from line {put.line} is still pending — "
                            "the target can only complete it from inside the CAF "
                            "progress engine (paper Fig. 2); synchronize the CAF "
                            "traffic (sync_all / event wait / cofence) before "
                            "entering the foreign runtime"
                        ),
                        related=[(put.line, f"pending {put.method} issued here")],
                    )
                pending.clear()


def _peer_also_blocks(entry: EntryStreams, put: StreamOp, block: StreamOp) -> bool:
    """The hang needs the put's target to sit in the same foreign-runtime
    call instead of progressing AMs.  SPMD streams make this checkable:
    the target rank's stream must reach the same blocking call site."""
    if put.peer is None:
        return True  # unknown target: keep the conservative report
    if not (0 <= put.peer < entry.nranks):
        return False
    target = entry.ranks[put.peer]
    return any(
        o.is_mpi_block and o.line == block.line and not o.tentative
        for o in target.ops
    )


# -- event delivery/consumption accounting --------------------------------


def _event_accounting(entry: EntryStreams):
    # (uid, slot) -> per-rank delivered / consumed totals.
    delivered: dict[tuple[int, int], dict[int, int]] = defaultdict(
        lambda: defaultdict(int)
    )
    consumed: dict[tuple[int, int], dict[int, int]] = defaultdict(
        lambda: defaultdict(int)
    )
    first_wait: dict[tuple[int, int, int], StreamOp] = {}
    skip: set[int] = set()  # event uids with unknowns anywhere
    for rs in entry.ranks:
        for w in rs.warnings:
            if w.startswith("escape:event#"):
                try:
                    skip.add(int(w.split("#", 1)[1]))
                except ValueError:
                    pass
        for op in rs.ops:
            if op.event is None:
                continue
            uid, slot = op.event
            if op.tentative or slot < 0:
                skip.add(uid)
                continue
            if op.kind == "caf.event_notify":
                if op.peer is None or not (0 <= op.peer < entry.nranks):
                    skip.add(uid)
                    continue
                delivered[(uid, slot)][op.peer] += 1
            elif op.kind == "caf.event_wait" and not op.bounded:
                consumed[(uid, slot)][rs.rank] += op.count
                first_wait.setdefault((uid, slot, rs.rank), op)

    for (uid, slot), per_rank in sorted(consumed.items()):
        if uid in skip:
            continue
        total_notifies = sum(
            sum(ranks.values())
            for (u, _s), ranks in delivered.items()
            if u == uid
        )
        if total_notifies == 0:
            continue  # never-notified events are syntactic CAF005 territory
        starving = [
            (rank, used, delivered[(uid, slot)].get(rank, 0))
            for rank, used in sorted(per_rank.items())
            if used > delivered[(uid, slot)].get(rank, 0)
        ]
        if not starving:
            continue
        # SPMD streams usually starve symmetrically; one report per slot.
        rank, used, have = starving[0]
        op = first_wait[(uid, slot, rank)]
        others = (
            f" ({len(starving)} of {entry.nranks} ranks starve this way)"
            if len(starving) > 1
            else ""
        )
        yield MatchProblem(
            kind="event-starvation",
            line=op.line,
            col=op.col,
            func=op.func,
            message=(
                f"rank {rank} waits for {used} notif"
                f"{'y' if used == 1 else 'ies'} on event slot {slot} "
                f"but only {have} "
                f"{'is' if have == 1 else 'are'} ever delivered to it "
                f"across all {entry.nranks} compiled rank streams — "
                f"this wait hangs (loop-carried or misrouted notify){others}"
            ),
        )


# -- raw-MPI two-sided accounting -----------------------------------------


def _recv_accounting(entry: EntryStreams):
    has_nonblocking_recv = any(
        op.kind == "mpi.irecv" for rs in entry.ranks for op in rs.ops
    )
    if has_nonblocking_recv:
        return  # request-completion pairing is out of scope
    sends: dict[int, int] = defaultdict(int)  # dest rank -> messages toward it
    recvs: dict[tuple[int, int], tuple[int, StreamOp]] = {}
    unknown_peer = False
    for rs in entry.ranks:
        for op in rs.ops:
            if op.tentative:
                if op.kind in ("mpi.send", "mpi.isend", "mpi.recv"):
                    return  # guarded p2p: counting would be unsound
                continue
            if op.kind in ("mpi.send", "mpi.isend"):
                if op.peer is None:
                    unknown_peer = True
                    continue
                sends[op.peer] += 1
            elif op.kind == "mpi.recv":
                if op.peer is None:
                    continue  # ANY_SOURCE: can match anything
                count, first = recvs.get((rs.rank, op.peer), (0, op))
                recvs[(rs.rank, op.peer)] = (count + 1, first)
    if unknown_peer:
        return
    by_receiver: dict[int, int] = defaultdict(int)
    for (receiver, _source), (count, _op) in recvs.items():
        by_receiver[receiver] += count
    for (receiver, source), (count, op) in sorted(recvs.items()):
        if by_receiver[receiver] > sends.get(receiver, 0) and count > 0:
            total = sends.get(receiver, 0)
            yield MatchProblem(
                kind="recv-starvation",
                line=op.line,
                col=op.col,
                func=op.func,
                message=(
                    f"rank {receiver} posts {by_receiver[receiver]} blocking "
                    f"recv{'s' if by_receiver[receiver] != 1 else ''} but only "
                    f"{total} message{'s are' if total != 1 else ' is'} ever "
                    "sent toward it across all compiled rank streams — the "
                    "excess recv hangs"
                ),
            )
            break  # one report per entry is enough
