"""Abstract runtime values for the per-rank stream interpreter.

The interpreter evaluates one rank's control flow with *concrete*
scalars wherever the program is deterministic in (rank, P, parameters)
and degrades to :class:`Unknown` where values are data-dependent.
Arrays are modeled by shape + itemsize; small arrays whose contents are
statically determined (``np.linspace`` bounds tables, index grids) carry
their concrete numpy data so slice bounds computed from them stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


class Unknown:
    """A value the interpreter cannot determine (data-dependent)."""

    __slots__ = ("note",)

    def __init__(self, note: str = ""):
        self.note = note

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<unknown {self.note}>" if self.note else "<unknown>"


#: Shared don't-care instance (notes only matter for targeted warnings).
UNKNOWN = Unknown()


def is_unknown(value: Any) -> bool:
    return isinstance(value, Unknown)


def is_int(value: Any) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


def is_num(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
        value, bool
    )


@dataclass
class ArrayVal:
    """A numpy array: shape (ints; None per-axis when data-dependent),
    itemsize, and — when every element is statically determined — the
    concrete data itself."""

    shape: tuple[Any, ...]
    itemsize: int = 8
    data: np.ndarray | None = None
    mask: bool = False

    @property
    def known_shape(self) -> bool:
        return all(is_int(d) for d in self.shape)

    @property
    def size(self) -> Any:
        if not self.known_shape:
            return UNKNOWN
        n = 1
        for d in self.shape:
            n *= int(d)
        return n

    @property
    def nbytes(self) -> Any:
        n = self.size
        return UNKNOWN if is_unknown(n) else n * self.itemsize

    def like(self, shape: tuple[Any, ...] | None = None) -> "ArrayVal":
        return ArrayVal(self.shape if shape is None else shape, self.itemsize, None)


@dataclass
class HandleVal:
    """A protocol object: a coarray, event array, MPI world/comm, window,
    GASNet world, or the image itself. ``uid`` identifies the allocation
    site so aliased handles account together; ``meta`` carries e.g. the
    coarray's element shape/itemsize or the event array's slot count."""

    kind: str  # image|coarray|event|mpi|comm|window|gasnet|team|finish
    uid: int = -1
    meta: dict[str, Any] = field(default_factory=dict)
    escaped: bool = False


@dataclass
class InstanceVal:
    """An instance of a class defined in the linted module."""

    cls_name: str
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class FuncVal:
    """A function value: a module function, nested def (with captured
    environment), or bound method (``self_val`` set)."""

    node: Any  # ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    closure: "Env | None" = None
    self_val: Any = None


@dataclass
class RngVal:
    """A ``numpy.random.Generator``: draws produce data-unknown arrays."""

    seeded: bool = True


class Env:
    """A lexical environment with parent chaining (closures)."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: "Env | None" = None):
        self.vars: dict[str, Any] = {}
        self.parent = parent

    def get(self, name: str) -> Any:
        env: Env | None = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        return UNKNOWN

    def has(self, name: str) -> bool:
        env: Env | None = self
        while env is not None:
            if name in env.vars:
                return True
            env = env.parent
        return False

    def set(self, name: str, value: Any) -> None:
        # Assign into the defining scope when rebinding a closure var the
        # *enclosing* function owns; otherwise bind locally. (Python's
        # actual rule needs `nonlocal`; apps only rebind locals, so the
        # closest-scope heuristic is right in practice.)
        self.vars[name] = value

    def child(self) -> "Env":
        return Env(self)


def promote_itemsize(a: Any, b: Any) -> int:
    ia = a.itemsize if isinstance(a, ArrayVal) else 8
    ib = b.itemsize if isinstance(b, ArrayVal) else 8
    return max(ia, ib)


def broadcast_shapes(sa: tuple[Any, ...], sb: tuple[Any, ...]) -> tuple[Any, ...]:
    """Numpy-style broadcast of two (possibly partially unknown) shapes."""
    out: list[Any] = []
    la, lb = len(sa), len(sb)
    for i in range(max(la, lb)):
        da = sa[la - 1 - i] if i < la else 1
        db = sb[lb - 1 - i] if i < lb else 1
        if is_int(da) and is_int(db):
            out.append(max(int(da), int(db)))
        elif is_int(da) and int(da) != 1:
            out.append(int(da))
        elif is_int(db) and int(db) != 1:
            out.append(int(db))
        else:
            out.append(da if not is_int(da) else db)
    out.reverse()
    return tuple(out)


DTYPE_ITEMSIZE: dict[str, int] = {
    "float64": 8,
    "float32": 4,
    "int64": 8,
    "int32": 4,
    "uint64": 8,
    "uint32": 4,
    "int8": 1,
    "uint8": 1,
    "bool": 1,
    "bool_": 1,
    "complex128": 16,
    "complex64": 8,
    "int": 8,
    "float": 8,
    "complex": 16,
    "intp": 8,
}


def itemsize_of(dtype_name: str | None, default: int = 8) -> int:
    if dtype_name is None:
        return default
    return DTYPE_ITEMSIZE.get(dtype_name, default)


#: Callable registered for numpy-module attributes the interpreter models.
NumpyFn = Callable[..., Any]
