"""The stream-tier rule pack: findings from compiled symbolic op streams.

``check_stream`` compiles a module's entry points at a small probe image
count, then emits:

* **CAF012** from the cross-rank matcher (:mod:`.match`) — Fig. 2
  dual-runtime deadlocks held across function calls or loop iterations,
  event starvation, recv starvation.  Findings that the syntactic tier
  already reports (CAF006 on the same function, CAF005 on the same
  line) are dropped: the symbolic tier *extends* the syntactic one, it
  does not echo it.
* **CAF011 / CAF013 / CAF014** — the performance pack.  Each finding is
  annotated with the predicted asymptotic cost, built from the op's
  symbolic enclosing-loop trip counts (kept in ``P`` and the entry's
  parameters) times the op's own cost order.
"""

from __future__ import annotations

from ..findings import Finding
from ..model import ModuleModel
from . import sym as symlib
from .interp import (
    EntryStreams,
    ModuleStreams,
    StreamCompiler,
    StreamOp,
    entry_functions,
)
from .match import analyze_entry
from .sym import ORDER_LINEAR, ORDER_POLY, ORDER_UNKNOWN, Sym, order_text

#: Probe configuration: small enough to stay inside the lint time budget,
#: concrete enough that rank arithmetic (XOR partners, rank +/- 1
#: neighbors) resolves exactly.
PROBE_NRANKS = 4
PROBE_LOOP_CAP = 8
PROBE_STEP_BUDGET = 6_000

#: Payload sizes at or below this are "tiny" for CAF014 (a scalar flag or
#: a couple of elements — far below any eager threshold).
EAGER_TINY_BYTES = 64

_P2P_PUT_KINDS = {
    "caf.coarray_write",
    "caf.async_write",
    "mpi.send",
    "mpi.isend",
    "mpi.win.put",
    "mpi.rput",
}


def compile_streams(model: ModuleModel) -> ModuleStreams:
    """Compile ``model`` with probe settings (shared by lint + tests)."""
    compiler = StreamCompiler(
        model,
        nranks=PROBE_NRANKS,
        loop_cap=PROBE_LOOP_CAP,
        step_budget=PROBE_STEP_BUDGET,
    )
    return compiler.compile()


def check_stream(
    model: ModuleModel,
    syntactic: list[Finding],
    streams: ModuleStreams | None = None,
) -> list[Finding]:
    """Run the stream tier; ``syntactic`` is used for cross-tier dedupe."""
    if streams is None:
        if not entry_functions(model):
            return []  # no entry points: skip module-env setup entirely
        streams = compile_streams(model)
    findings: list[Finding] = []
    caf006_funcs = {f.func for f in syntactic if f.rule == "CAF006"}
    caf006_lines = {f.line for f in syntactic if f.rule == "CAF006"}
    caf005_lines = {f.line for f in syntactic if f.rule == "CAF005"}
    for entry in streams.entries:
        findings.extend(
            _matcher_findings(
                entry, model, caf006_funcs, caf006_lines, caf005_lines
            )
        )
        findings.extend(_perf_findings(entry, model))
    return _dedupe(findings)


def _dedupe(findings: list[Finding]) -> list[Finding]:
    seen: set[tuple[str, int, str]] = set()
    out = []
    for f in findings:
        key = (f.rule, f.line, f.message)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out


def _matcher_findings(
    entry: EntryStreams,
    model: ModuleModel,
    caf006_funcs: set[str],
    caf006_lines: set[int],
    caf005_lines: set[int],
) -> list[Finding]:
    out = []
    for problem in analyze_entry(entry):
        if problem.kind == "dual-runtime" and (
            problem.func in caf006_funcs or problem.line in caf006_lines
        ):
            continue  # syntactic CAF006 already covers this site
        if problem.kind == "event-starvation" and problem.line in caf005_lines:
            continue
        out.append(
            Finding(
                rule="CAF012",
                path=str(model.path),
                line=problem.line,
                col=problem.col,
                func=problem.func,
                message=f"[{entry.qualname} @ P={entry.nranks}] {problem.message}",
                related=[
                    ("stream", line, text) for line, text in problem.related
                ],
            )
        )
    return out


def _perf_findings(entry: EntryStreams, model: ModuleModel) -> list[Finding]:
    out = []
    reported: set[tuple[str, int]] = set()
    for rs in entry.ranks:
        for op in rs.ops:
            rule = _perf_rule_for(op)
            if rule is None:
                continue
            key = (rule, op.line)
            if key in reported:
                continue
            reported.add(key)
            out.append(_perf_finding(rule, op, entry, model))
    return out


def _perf_rule_for(op: StreamOp) -> str | None:
    if op.loop_depth == 0:
        return None
    trip = op.trip_product()
    if op.method in ("flush_all", "flush_local_all"):
        if _repeats(trip):
            return "CAF011"
        return None
    if op.method == "sync" and op.kind == "mpi.win.sync":
        if op.note == "separate" and _repeats(trip):
            return "CAF013"
        return None
    if (
        op.kind in _P2P_PUT_KINDS
        and op.nbytes is not None
        and 0 < op.nbytes <= EAGER_TINY_BYTES
        and trip.order_in_p() in (ORDER_LINEAR, ORDER_POLY)
    ):
        return "CAF014"
    return None


def _repeats(trip: Sym) -> bool:
    """Does the enclosing loop nest run more than once?  Constants must
    exceed 1; anything parameter- or P-dependent (or unresolvable)
    counts as repeated — a loop is a loop."""
    if trip.is_const:
        value = trip.const_value
        return value is not None and value > 1
    return True


def _perf_finding(
    rule: str, op: StreamOp, entry: EntryStreams, model: ModuleModel
) -> Finding:
    trip = op.trip_product()
    trip_text = trip.text() if trip.kind != "unknown" else "trip"
    per_op_p = Sym.var(symlib.P) if rule == "CAF011" else symlib.ONE
    total = Sym.op("*", trip, per_op_p) if trip.kind != "unknown" else per_op_p
    order = total.order_in_p()
    if rule == "CAF011":
        cost = f"Θ({trip_text} · P)"
        detail = (
            f"flush_all walks all P={entry.nranks} ranks per call inside a "
            f"loop nest with symbolic trip {trip_text}; predicted cost "
            f"{cost}, {order_text(order if order != ORDER_UNKNOWN else ORDER_LINEAR)} "
            "or worse overall"
        )
    elif rule == "CAF013":
        cost = f"Θ({trip_text})"
        detail = (
            "per-iteration WIN_SYNC on a separate-model window pays a "
            f"public/private reconciliation each of {trip_text} iterations; "
            f"predicted cost {cost}"
        )
    else:  # CAF014
        cost = f"Θ({trip_text})"
        detail = (
            f"{op.nbytes}-byte {op.method} repeated across a loop nest with "
            f"symbolic trip {trip_text} (grows with P); predicted "
            f"{cost} latency-bound messages from rank {op.rank} alone"
        )
    related = [
        ("loop", line, f"enclosing loop (trip {t.text() if t.kind != 'unknown' else '?'})")
        for line, t in zip(op.loop_lines, op.loop_trips)
    ]
    return Finding(
        rule=rule,
        path=str(model.path),
        line=op.line,
        col=op.col,
        func=op.func,
        message=f"[{entry.qualname} @ P={entry.nranks}] {detail}",
        related=related,
    )


# Re-export for engine/tests convenience.
__all__ = [
    "check_stream",
    "compile_streams",
    "PROBE_NRANKS",
    "PROBE_LOOP_CAP",
    "PROBE_STEP_BUDGET",
    "EAGER_TINY_BYTES",
]