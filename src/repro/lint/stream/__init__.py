"""repro.lint.stream — the symbolic op-stream compiler (static tier 2).

Compiles app entry points into per-rank symbolic op streams in the
``repro.ir`` vocabulary (:mod:`.interp`), then runs cross-rank deadlock
matching (:mod:`.match`), the CAF011+ performance rule pack
(:mod:`.rules_stream`), and pre-run communication-volume estimation
(:mod:`.estimate`) on top of them.
"""

from .estimate import (
    StaticPrediction,
    TraceComparison,
    compare_to_trace,
    predict_entry,
    predict_file,
)
from .interp import (
    EntryStreams,
    ModuleStreams,
    RankStream,
    StreamCompiler,
    StreamOp,
    entry_functions,
)
from .match import MatchProblem, analyze_entry
from .rules_stream import check_stream, compile_streams
from .sym import Sym, from_ast, order_text, trip_from_range

__all__ = [
    "EntryStreams",
    "MatchProblem",
    "ModuleStreams",
    "RankStream",
    "StaticPrediction",
    "StreamCompiler",
    "StreamOp",
    "Sym",
    "TraceComparison",
    "analyze_entry",
    "check_stream",
    "compare_to_trace",
    "compile_streams",
    "entry_functions",
    "from_ast",
    "order_text",
    "predict_entry",
    "predict_file",
    "trip_from_range",
]
