"""Static communication-cost estimation from compiled op streams.

Evaluates an entry point's per-rank symbolic streams — with the entry's
parameters bound to concrete values — into the same aggregates the obs
layer measures at runtime: per-op-kind call counts and byte totals, a
P×P communication matrix, and (via :func:`repro.ir.costs.static_op_seconds`
against a :class:`MachineSpec`) an order-of-magnitude seconds preview.
All of it before any run.

Validation against a PR 7 recorded trace (:func:`compare_to_trace`)
matches kinds through :data:`TRACE_KIND_MAP` — the recorder logs a CAF
``write_async`` as the backend-level ``mpi.rput`` it lowers to — and
compares call counts (expected exact for deterministic apps) and bytes
(tolerance documented per app: RandomAccess's data-dependent bucket
sizes are modeled by the mask-half expected value, everything else is
exact).
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ir.costs import static_op_seconds

from ..model import build_model
from .interp import EntryStreams, StreamCompiler

#: Static kinds → the kind the mpi-backend recorder logs them under.
#: ``write_async`` has no CAF-level obs kind: the AM-path lowering posts
#: an ``mpi.rput`` (§3.3 case 4), which is what PR 7 traces contain.
TRACE_KIND_MAP = {
    "caf.async_write": "mpi.rput",
    "caf.async_read": "mpi.rget",
    "caf.async_copy": "mpi.rput",
}

#: Kinds that never appear in the obs side table (pure bookkeeping).
_UNRECORDED = {"caf.finish", "caf.serve", "caf.spawn", "mpi.win.allocate"}


@dataclass
class KindTotal:
    calls: int = 0
    nbytes: int = 0
    unknown_bytes: int = 0  # calls whose payload size stayed symbolic
    seconds: float = 0.0


@dataclass
class StaticPrediction:
    """Pre-run communication prediction for one entry point."""

    qualname: str
    path: str
    nranks: int
    by_kind: dict[str, KindTotal] = field(default_factory=dict)
    comm_matrix: np.ndarray | None = None  # (P, P) bytes, origin × target
    warnings: set[str] = field(default_factory=set)
    aborted: list[str] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(k.nbytes for k in self.by_kind.values())

    @property
    def total_calls(self) -> int:
        return sum(k.calls for k in self.by_kind.values())

    @property
    def total_seconds(self) -> float:
        return sum(k.seconds for k in self.by_kind.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "entry": self.qualname,
            "path": self.path,
            "nranks": self.nranks,
            "total_bytes": self.total_bytes,
            "total_calls": self.total_calls,
            "predicted_seconds": self.total_seconds,
            "by_kind": {
                kind: {
                    "calls": t.calls,
                    "nbytes": t.nbytes,
                    "unknown_bytes": t.unknown_bytes,
                    "seconds": t.seconds,
                }
                for kind, t in sorted(self.by_kind.items())
            },
            "comm_matrix": (
                self.comm_matrix.tolist() if self.comm_matrix is not None else None
            ),
            "warnings": sorted(self.warnings),
            "aborted": list(self.aborted),
        }


def predict_entry(
    entry: EntryStreams, spec: Any | None = None
) -> StaticPrediction:
    """Aggregate one entry's per-rank streams into a prediction."""
    pred = StaticPrediction(
        qualname=entry.qualname, path=entry.path, nranks=entry.nranks
    )
    matrix = np.zeros((entry.nranks, entry.nranks), dtype=np.int64)
    per_kind_bytes: dict[str, list[int]] = {}
    for rs in entry.ranks:
        pred.warnings |= rs.warnings
        if rs.aborted:
            pred.aborted.append(f"rank{rs.rank}:{rs.aborted}")
        for op in rs.ops:
            if op.kind in _UNRECORDED:
                continue
            total = pred.by_kind.setdefault(op.kind, KindTotal())
            total.calls += 1
            if op.nbytes is not None:
                total.nbytes += op.nbytes
                per_kind_bytes.setdefault(op.kind, []).append(op.nbytes)
            else:
                total.unknown_bytes += 1
                per_kind_bytes.setdefault(op.kind, []).append(0)
            if op.peer is not None and 0 <= op.peer < entry.nranks and op.nbytes:
                matrix[op.rank, op.peer] += op.nbytes
    pred.comm_matrix = matrix
    if spec is not None:
        for kind, sizes in per_kind_bytes.items():
            seconds = static_op_seconds(
                kind, np.asarray(sizes, dtype=np.int64), spec, entry.nranks
            )
            pred.by_kind[kind].seconds = float(np.sum(seconds))
    return pred


def predict_file(
    path: str | pathlib.Path,
    *,
    entry: str | None = None,
    nranks: int = 4,
    bindings: dict[str, Any] | None = None,
    spec: Any | None = None,
    step_budget: int = 2_000_000,
) -> list[StaticPrediction]:
    """Compile ``path`` and predict every entry (or just ``entry``)."""
    source = pathlib.Path(path).read_text()
    model = build_model(ast.parse(source), str(path))
    compiler = StreamCompiler(
        model,
        nranks=nranks,
        loop_cap=None,  # estimation must not clamp trip counts
        step_budget=step_budget,
        bindings=bindings,
    )
    out = []
    for streams in compiler.compile().entries:
        if entry is not None and streams.qualname != entry:
            continue
        out.append(predict_entry(streams, spec=spec))
    return out


@dataclass
class KindComparison:
    kind: str  # recorded-side kind name
    static_calls: int
    recorded_calls: int
    static_bytes: int
    recorded_bytes: int

    @property
    def calls_exact(self) -> bool:
        return self.static_calls == self.recorded_calls

    @property
    def bytes_rel_err(self) -> float:
        if self.recorded_bytes == 0:
            return 0.0 if self.static_bytes == 0 else float("inf")
        return abs(self.static_bytes - self.recorded_bytes) / self.recorded_bytes


@dataclass
class TraceComparison:
    per_kind: list[KindComparison]
    static_total_bytes: int
    recorded_total_bytes: int

    @property
    def total_bytes_rel_err(self) -> float:
        if self.recorded_total_bytes == 0:
            return 0.0 if self.static_total_bytes == 0 else float("inf")
        return (
            abs(self.static_total_bytes - self.recorded_total_bytes)
            / self.recorded_total_bytes
        )


def compare_to_trace(pred: StaticPrediction, trace: Any) -> TraceComparison:
    """Compare a prediction to a recorded trace's obs side table.

    Only kinds the static stream emits (after :data:`TRACE_KIND_MAP`
    lowering) are compared — the recorder also logs backend-internal
    kinds (AM handler spans, flush waits) with no static counterpart.
    """
    kinds = list(trace.manifest.get("obs_kinds", []))
    obs_kind = trace.arrays["obs_kind"]
    obs_nbytes = trace.arrays["obs_nbytes"]
    recorded: dict[str, tuple[int, int]] = {}
    for idx, kind in enumerate(kinds):
        sel = obs_kind == idx
        recorded[kind] = (int(np.sum(sel)), int(np.sum(obs_nbytes[sel])))

    static: dict[str, tuple[int, int]] = {}
    for kind, total in pred.by_kind.items():
        mapped = TRACE_KIND_MAP.get(kind, kind)
        calls, nbytes = static.get(mapped, (0, 0))
        static[mapped] = (calls + total.calls, nbytes + total.nbytes)

    per_kind = []
    static_total = 0
    recorded_total = 0
    for kind in sorted(static):
        s_calls, s_bytes = static[kind]
        r_calls, r_bytes = recorded.get(kind, (0, 0))
        per_kind.append(
            KindComparison(
                kind=kind,
                static_calls=s_calls,
                recorded_calls=r_calls,
                static_bytes=s_bytes,
                recorded_bytes=r_bytes,
            )
        )
        static_total += s_bytes
        recorded_total += r_bytes
    return TraceComparison(
        per_kind=per_kind,
        static_total_bytes=static_total,
        recorded_total_bytes=recorded_total,
    )
