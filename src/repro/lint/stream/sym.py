"""Symbolic scalar expressions over ``P`` (the image count) and named
problem-size parameters.

The stream compiler keeps loop trip counts and per-op cost orders
*symbolic*: a ``Sym`` is a tiny expression tree built from an AST
fragment (a ``range()`` argument, a payload size) whose free variables
are the image count (``img.nranks`` / ``num_images()`` become the
reserved variable ``P``) and the enclosing function's parameters. Two
consumers:

* the **perf rule pack** asks for the asymptotic order of an expression
  in ``P`` (:meth:`Sym.order_in_p`) and for a human-readable form
  (:meth:`Sym.text`) to annotate findings with predicted costs;
* the **estimator / matcher** evaluate trips concretely
  (:meth:`Sym.evaluate`) under a binding environment.

Anything the translator cannot model becomes :data:`UNKNOWN`, which
evaluates to ``None`` and has unknown order — rules stay quiet on it.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping

#: Reserved variable name for the image count.
P = "P"

#: Order-in-P lattice: constants < log P < linear < polynomial-or-worse.
ORDER_CONST = 0
ORDER_LOG = 1
ORDER_LINEAR = 2
ORDER_POLY = 3
ORDER_UNKNOWN = -1

_ORDER_TEXT = {
    ORDER_CONST: "O(1)",
    ORDER_LOG: "O(log P)",
    ORDER_LINEAR: "O(P)",
    ORDER_POLY: "O(P^k)",
    ORDER_UNKNOWN: "O(?)",
}


def order_text(order: int) -> str:
    return _ORDER_TEXT.get(order, "O(?)")


@dataclass(frozen=True)
class Sym:
    """One symbolic scalar: ``kind`` is ``const`` / ``var`` / ``op`` /
    ``call`` / ``unknown``; ``args`` holds children (Sym) or the payload
    (value for ``const``, name for ``var``, operator symbol first for
    ``op``/``call``)."""

    kind: str
    args: tuple[Any, ...] = ()

    # -- constructors ---------------------------------------------------

    @staticmethod
    def const(value: float | int) -> "Sym":
        return Sym("const", (value,))

    @staticmethod
    def var(name: str) -> "Sym":
        return Sym("var", (name,))

    @staticmethod
    def op(symbol: str, *children: "Sym") -> "Sym":
        if any(c.kind == "unknown" for c in children):
            return UNKNOWN
        return Sym("op", (symbol, *children))

    @staticmethod
    def call(fn: str, *children: "Sym") -> "Sym":
        if any(c.kind == "unknown" for c in children):
            return UNKNOWN
        return Sym("call", (fn, *children))

    # -- queries --------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.kind == "const"

    @property
    def const_value(self) -> float | int | None:
        return self.args[0] if self.kind == "const" else None

    def free_vars(self) -> set[str]:
        if self.kind == "var":
            return {self.args[0]}
        if self.kind in ("op", "call"):
            out: set[str] = set()
            for child in self.args[1:]:
                out |= child.free_vars()
            return out
        return set()

    def evaluate(self, env: Mapping[str, float | int]) -> float | int | None:
        """Concrete value under ``env``, or None when underdetermined."""
        if self.kind == "const":
            return self.args[0]
        if self.kind == "var":
            return env.get(self.args[0])
        if self.kind == "op":
            symbol = self.args[0]
            vals = [c.evaluate(env) for c in self.args[1:]]
            if any(v is None for v in vals):
                return None
            try:
                return _BINOPS[symbol](*vals)
            except (ZeroDivisionError, ValueError, OverflowError):
                return None
        if self.kind == "call":
            fn = self.args[0]
            vals = [c.evaluate(env) for c in self.args[1:]]
            if any(v is None for v in vals):
                return None
            try:
                return _CALLS[fn](*vals)
            except (ZeroDivisionError, ValueError, OverflowError):
                return None
        return None

    def order_in_p(self) -> int:
        """Asymptotic order of this expression in the image count ``P``."""
        if self.kind == "const":
            return ORDER_CONST
        if self.kind == "var":
            return ORDER_LINEAR if self.args[0] == P else ORDER_CONST
        if self.kind == "op":
            symbol = self.args[0]
            orders = [c.order_in_p() for c in self.args[1:]]
            if any(o == ORDER_UNKNOWN for o in orders):
                return ORDER_UNKNOWN
            if symbol in ("+", "-", "max", "min"):
                return max(orders)
            if symbol == "*":
                nontrivial = [o for o in orders if o != ORDER_CONST]
                if not nontrivial:
                    return ORDER_CONST
                if len(nontrivial) == 1:
                    return nontrivial[0]
                return ORDER_POLY
            if symbol in ("/", "//"):
                num, den = orders
                if den == ORDER_CONST:
                    return num
                return ORDER_UNKNOWN  # P/P-style ratios: stay quiet
            if symbol in ("%",):
                return orders[0]
            if symbol in ("**", "<<"):
                base, exp = orders
                if exp != ORDER_CONST:
                    return ORDER_POLY  # 2**P style blowup
                return ORDER_POLY if base != ORDER_CONST else ORDER_CONST
            return ORDER_UNKNOWN
        if self.kind == "call":
            fn = self.args[0]
            orders = [c.order_in_p() for c in self.args[1:]]
            if any(o == ORDER_UNKNOWN for o in orders):
                return ORDER_UNKNOWN
            if fn in ("log2", "log"):
                inner = orders[0]
                return ORDER_LOG if inner != ORDER_CONST else ORDER_CONST
            if fn in ("int", "ceil", "floor", "abs", "sqrt", "max", "min"):
                return max(orders) if orders else ORDER_CONST
            return ORDER_UNKNOWN
        return ORDER_UNKNOWN

    def text(self) -> str:
        if self.kind == "const":
            value = self.args[0]
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            return str(value)
        if self.kind == "var":
            return str(self.args[0])
        if self.kind == "op":
            symbol = self.args[0]
            parts = [c.text() for c in self.args[1:]]
            if symbol in ("max", "min"):
                return f"{symbol}({', '.join(parts)})"
            joined = f" {symbol} ".join(parts)
            return f"({joined})" if len(parts) > 1 else joined
        if self.kind == "call":
            fn = self.args[0]
            return f"{fn}({', '.join(c.text() for c in self.args[1:])})"
        return "?"


UNKNOWN = Sym("unknown")
ONE = Sym.const(1)

_BINOPS: dict[str, Callable[..., Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "**": lambda a, b: a**b,
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
    "max": lambda a, b: max(a, b),
    "min": lambda a, b: min(a, b),
}

_CALLS: dict[str, Callable[..., Any]] = {
    "log2": math.log2,
    "log": math.log,
    "sqrt": math.sqrt,
    "int": int,
    "ceil": math.ceil,
    "floor": math.floor,
    "abs": abs,
    "max": max,
    "min": min,
}

_AST_BINOPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
    ast.LShift: "<<",
    ast.RShift: ">>",
}

#: Names treated as the image count when translating expressions.
_P_ATTRS = ("nranks", "num_images")


def from_ast(
    node: ast.AST, params: "set[str] | Mapping[str, Sym] | None" = None
) -> Sym:
    """Translate a scalar expression AST into a :class:`Sym`.

    ``params`` names the free variables allowed to survive translation
    (typically the enclosing function's parameters). When given as a
    mapping, a matching name resolves to the mapped ``Sym`` instead of a
    fresh variable, so locals bound to parameter expressions stay
    symbolic. ``img.nranks`` / ``num_images()`` / ``nranks`` become the
    reserved variable ``P``. Unsupported shapes become UNKNOWN.
    """
    params = params if params is not None else set()
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return Sym.const(node.value)
    if isinstance(node, ast.Name):
        if node.id in ("nranks", "num_images", "nprocs"):
            return Sym.var(P)
        if node.id in params:
            if isinstance(params, Mapping):
                return params[node.id]
            return Sym.var(node.id)
        return UNKNOWN
    if isinstance(node, ast.Attribute):
        if node.attr in _P_ATTRS:
            return Sym.var(P)
        if node.attr == "rank":
            return Sym.var("rank")
        return UNKNOWN
    if isinstance(node, ast.BinOp):
        symbol = _AST_BINOPS.get(type(node.op))
        if symbol is None:
            return UNKNOWN
        return Sym.op(symbol, from_ast(node.left, params), from_ast(node.right, params))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return Sym.op("-", Sym.const(0), from_ast(node.operand, params))
    if isinstance(node, ast.Call):
        fn = _call_name(node)
        if fn in ("num_images", "this_image"):
            return Sym.var(P) if fn == "num_images" else Sym.var("rank")
        if fn in _CALLS and not node.keywords:
            children = [from_ast(a, params) for a in node.args]
            if fn in ("max", "min") and len(children) == 2:
                return Sym.op(fn, *children)
            if len(children) == 1:
                return Sym.call(fn, children[0])
        if fn == "len":
            return UNKNOWN
        return UNKNOWN
    return UNKNOWN


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def trip_from_range(call: ast.Call, params: set[str] | None = None) -> Sym:
    """Symbolic trip count of a ``range(...)`` call (UNKNOWN otherwise)."""
    if _call_name(call) != "range" or call.keywords:
        return UNKNOWN
    args = call.args
    if len(args) == 1:
        return from_ast(args[0], params)
    if len(args) == 2:
        return Sym.op("-", from_ast(args[1], params), from_ast(args[0], params))
    if len(args) == 3:
        span = Sym.op("-", from_ast(args[1], params), from_ast(args[0], params))
        return Sym.op("//", span, from_ast(args[2], params))
    return UNKNOWN
