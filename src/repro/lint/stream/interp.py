"""Per-rank abstract interpretation of app modules into symbolic op streams.

The compiler runs each *entry point* (a top-level function whose first
parameter is named ``img`` and which the module itself never calls) once
per rank ``r in 0..P-1`` with ``img.rank`` bound to the concrete ``r``.
Rank-dependent branches (``if img.rank == 0``, XOR partners, ``rank ± 1``
neighbor arithmetic) therefore evaluate *exactly* instead of needing
guarded sub-streams, while loop trip counts are additionally kept
symbolic in ``P`` and the entry's parameters for the perf rule pack.

The result is one :class:`RankStream` per rank: a linear sequence of
:class:`StreamOp` in the ``repro.ir`` obs vocabulary (``caf.coarray_write``,
``caf.event_notify``, ``mpi.coll.allreduce``, ...) annotated with peer
rank, payload bytes, event identity, enclosing-loop trip symbols, and
the flags the Fig. 2 matcher needs (CAF put vs. blocking into raw MPI).

Documented heuristics (each adds a named warning to the stream):

* ``loop-truncated`` — concrete loops longer than ``loop_cap`` run only
  ``loop_cap`` iterations.  Clamping is uniform across ranks, so
  per-iteration notify/wait balance survives, but ``wait(count=n)``
  against ``n`` clamped notifies does not: the matcher skips event
  *accounting* for truncated streams (the Fig. 2 prefix scan remains
  sound).
* ``unresolved-iter`` / ``unresolved-while`` — a data-dependent loop
  body executes once with its ops marked tentative.
* ``assumed-no-break`` — an ``if <unknown>: break/return/raise/continue``
  guard is assumed not taken (CGPOP's convergence break: the recorded
  runs never converge before ``max_iter`` either).
* ``unresolved-branch`` — an unknown two-armed branch runs both arms on
  cloned environments; diverging bindings merge to Unknown and the ops
  are tentative.
* ``mask-half`` — boolean-mask selection keeps half the extent.
* ``steady-state`` — reassigning a known-size array from an unknown-size
  expression keeps the prior extent (RandomAccess's in-flight pool).
"""

from __future__ import annotations

import ast
import itertools
import math
import operator
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..model import FunctionInfo, ModuleModel
from . import sym as symlib
from .sym import Sym
from .values import (
    UNKNOWN,
    ArrayVal,
    Env,
    FuncVal,
    HandleVal,
    InstanceVal,
    RngVal,
    broadcast_shapes,
    is_int,
    is_num,
    is_unknown,
    itemsize_of,
    promote_itemsize,
)


@dataclass
class StreamOp:
    """One communication/synchronization op emitted by one rank."""

    kind: str  # repro.ir obs-style kind, e.g. "caf.coarray_write"
    method: str  # source-level method name, e.g. "write_async"
    line: int
    col: int
    func: str
    rank: int
    peer: int | None = None  # target (puts/notify) or source (reads/recv)
    nbytes: int | None = None
    nelems: int | None = None
    event: tuple[int, int] | None = None  # (event-array uid, slot)
    count: int = 1  # wait consumption count
    bounded: bool = False  # timed wait / trywait — cannot hang
    tentative: bool = False  # under an unresolved guard
    is_sync: bool = False  # CAF synchronization point (completes CAF traffic)
    is_mpi_block: bool = False  # blocks inside a non-CAF runtime (raw MPI/GASNet)
    is_caf_put: bool = False  # CAF traffic needing target-side AM progress
    loop_trips: tuple[Sym, ...] = ()  # symbolic trips of enclosing loops
    loop_lines: tuple[int, ...] = ()
    note: str | None = None  # op-specific detail (e.g. window memory model)

    @property
    def loop_depth(self) -> int:
        return len(self.loop_trips)

    def trip_product(self) -> Sym:
        out = symlib.ONE
        for t in self.loop_trips:
            out = Sym.op("*", out, t) if out is not symlib.ONE else t
        return out


@dataclass
class RankStream:
    rank: int
    ops: list[StreamOp] = field(default_factory=list)
    warnings: set[str] = field(default_factory=set)
    truncated: bool = False
    aborted: str | None = None

    @property
    def sound_for_accounting(self) -> bool:
        """Event count accounting is only trusted on fully resolved runs."""
        if self.aborted or self.truncated:
            return False
        return not any(
            w.split(":")[0]
            in (
                "unresolved-iter",
                "unresolved-while",
                "spawn",
                "serve",
                "escape",
                "launch-clamped",
            )
            for w in self.warnings
        )


@dataclass
class EntryStreams:
    qualname: str
    path: str
    line: int
    nranks: int
    ranks: list[RankStream]

    @property
    def warnings(self) -> set[str]:
        out: set[str] = set()
        for rs in self.ranks:
            out |= rs.warnings
        return out


@dataclass
class ModuleStreams:
    path: str
    nranks: int
    entries: list[EntryStreams] = field(default_factory=list)


class _BudgetExceeded(Exception):
    pass


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


class _RaiseSignal(Exception):
    pass


@dataclass
class ModuleVal:
    name: str  # "numpy", "numpy.random", "numpy.fft", "numpy.linalg", "math"


@dataclass
class ModuleFn:
    module: str
    name: str


@dataclass
class DtypeVal:
    name: str


@dataclass
class BuiltinVal:
    name: str


@dataclass
class MethodVal:
    obj: Any
    name: str


@dataclass
class ClassVal:
    node: ast.ClassDef
    closure: Env


_NUMPY_ALIASES = {"np", "numpy"}
_BUILTINS = {
    "int",
    "float",
    "bool",
    "str",
    "len",
    "max",
    "min",
    "abs",
    "sum",
    "range",
    "enumerate",
    "zip",
    "sorted",
    "reversed",
    "list",
    "tuple",
    "dict",
    "set",
    "print",
    "isinstance",
    "round",
    "divmod",
    "pow",
    "any",
    "all",
}

_BINOP_FNS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
    ast.LShift: operator.lshift,
    ast.RShift: operator.rshift,
    ast.BitXor: operator.xor,
    ast.BitAnd: operator.and_,
    ast.BitOr: operator.or_,
    ast.MatMult: operator.matmul,
}

_CMP_FNS = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
}

#: image-handle collectives → obs kind suffix (all CAF sync points).
_IMG_COLLECTIVES = {
    "sync_all": "barrier",
    "barrier": "barrier",
    "team_broadcast": "broadcast",
    "team_reduce": "reduce",
    "team_allreduce": "allreduce",
    "team_alltoall": "alltoall",
    "team_allgather": "allgather",
}

#: raw-MPI comm collectives (every one blocks inside the MPI runtime).
_COMM_COLLECTIVES = {
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "alltoall",
    "alltoallv",
    "allgather",
    "gather",
    "scatter",
    "reduce_scatter_block",
}

#: window RMA methods: method → (kind suffix, index of target-rank arg).
_WIN_RMA = {
    "put": ("put", 1),
    "rput": ("rput", 1),
    "get": ("get", 1),
    "rget": ("rget", 1),
    "accumulate": ("accumulate", 1),
    "raccumulate": ("accumulate", 1),
    "get_accumulate": ("get_accumulate", 2),
    "fetch_and_op": ("fetch_and_op", 2),
    "compare_and_swap": ("compare_and_swap", 3),
}

_GASNET_BLOCKING = {"barrier", "wait_syncnbi", "put_blocking", "get_blocking"}

_MAX_CONCRETE_ELEMS = 1 << 16
_MAX_CALL_DEPTH = 24


def _is_main_guard(node: ast.stmt) -> bool:
    return (
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and isinstance(node.test.left, ast.Name)
        and node.test.left.id == "__name__"
    )


def entry_functions(model: ModuleModel) -> list[FunctionInfo]:
    """Top-level functions with a first parameter named ``img`` that the
    module itself never calls — the per-image mains the cluster spawns.
    Calls under ``if __name__ == "__main__"`` don't count: that guard is
    exactly where a module launches its own entry point."""
    called: set[str] = set()
    roots = [stmt for stmt in model.tree.body if not _is_main_guard(stmt)]
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                called.add(node.func.id)
    out = []
    for fn in model.functions:
        if fn.cls is not None or fn.qualname in called:
            continue
        args = fn.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        if names and names[0] == "img":
            out.append(fn)
    return out


#: Hinted launch sizes above this compile at the default probe count
#: instead (with a ``launch-clamped`` warning that disables accounting).
_MAX_HINT_NRANKS = 16


def launch_hints(model: ModuleModel) -> dict[str, int]:
    """Image counts the module itself launches entries at.

    A call shaped ``anything(fn, N, ...)`` with ``N`` a positive integer
    literal (the ``run_caf(kernel, nimages, ...)`` idiom) pins ``fn`` to
    ``N`` images: a 2-image ring demo compiled at the probe default of 4
    would report recv/event imbalances that can never happen at its real
    size.  First hint wins when a module launches at several sizes.
    """
    hints: dict[str, int] = {}
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call) or len(node.args) < 2:
            continue
        first, second = node.args[0], node.args[1]
        if (
            isinstance(first, ast.Name)
            and isinstance(second, ast.Constant)
            and type(second.value) is int
            and second.value > 0
        ):
            hints.setdefault(first.id, second.value)
    return hints


class StreamCompiler:
    """Compile one module's entry points into per-rank symbolic op streams."""

    def __init__(
        self,
        model: ModuleModel,
        *,
        nranks: int = 4,
        loop_cap: int | None = 8,
        step_budget: int = 20_000,
        bindings: dict[str, Any] | None = None,
    ):
        self.model = model
        self.nranks = nranks
        self.loop_cap = loop_cap
        self.step_budget = step_budget
        self.bindings = bindings or {}
        self.module_env = Env()
        self._class_registry: dict[str, ClassVal] = {}
        self._init_module_env()

    # -- public API -----------------------------------------------------

    def compile(self) -> ModuleStreams:
        out = ModuleStreams(path=str(self.model.path), nranks=self.nranks)
        hints = launch_hints(self.model)
        for fn in entry_functions(self.model):
            out.entries.append(self.compile_entry(fn, nranks=hints.get(fn.qualname)))
        return out

    def compile_entry(
        self, fn: FunctionInfo, nranks: int | None = None
    ) -> EntryStreams:
        clamped = nranks is not None and nranks > _MAX_HINT_NRANKS
        use = self.nranks if nranks is None or clamped else nranks
        saved, self.nranks = self.nranks, use
        try:
            ranks = []
            for r in range(use):
                run = _RankRun(self, rank=r)
                ranks.append(run.run_entry(fn))
        finally:
            self.nranks = saved
        if clamped:
            for rs in ranks:
                rs.warnings.add(f"launch-clamped:{nranks}->{use}")
        return EntryStreams(
            qualname=fn.qualname,
            path=str(self.model.path),
            line=fn.node.lineno,
            nranks=use,
            ranks=ranks,
        )

    # -- module environment ---------------------------------------------

    def _init_module_env(self) -> None:
        env = self.module_env
        env.set("__name__", "__lint__")
        for stmt in self.model.tree.body:
            try:
                self._exec_top(stmt, env)
            except Exception:
                continue

    def _exec_top(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env.set(stmt.name, FuncVal(stmt, stmt.name, closure=env))
        elif isinstance(stmt, ast.ClassDef):
            cv = ClassVal(stmt, env)
            self._class_registry[stmt.name] = cv
            env.set(stmt.name, cv)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            pass  # names resolve lazily (np/math specials; others Unknown)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            # Best-effort constant folding of module-level config values.
            run = _RankRun(self, rank=0, silent=True)
            run.env = env
            try:
                run.exec_stmt(stmt, env)
            except Exception:
                pass
        # Skip `if __name__ == "__main__"` and other module-level control flow.


class _RankRun:
    """One rank's abstract execution of one entry point."""

    def __init__(self, compiler: StreamCompiler, rank: int, silent: bool = False):
        self.c = compiler
        self.rank = rank
        self.nranks = compiler.nranks
        self.silent = silent
        self.stream = RankStream(rank=rank)
        self.steps = 0
        self.uid = itertools.count()
        self.tentative = 0
        self.loop_syms: list[Sym] = []
        self.loop_lines: list[int] = []
        self.func_stack: list[str] = []
        self.node_stack: list[ast.AST] = []
        self.sym_env: dict[str, Sym] = {}
        self._img: HandleVal | None = None
        self._mpi: HandleVal | None = None
        self._comm: HandleVal | None = None
        self._gasnet: HandleVal | None = None
        self._cluster: HandleVal | None = None
        #: Modeled Cluster.shared() singletons, keyed by the (hashable)
        #: shared key so repeated lookups alias one value.
        self._cluster_shared: dict[Any, Any] = {}
        self.env: Env = compiler.module_env

    # -- entry ----------------------------------------------------------

    def run_entry(self, fn: FunctionInfo) -> RankStream:
        img = HandleVal("image", uid=next(self.uid), meta={"rank": self.rank})
        self._img = img
        env = self.c.module_env.child()
        args = fn.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        kwonly = [a.arg for a in args.kwonlyargs]
        env.set(names[0], img)
        self.sym_env = {}
        for name in names[1:] + kwonly:
            if name in self.c.bindings:
                value = self.c.bindings[name]
            else:
                default = self._default_for(fn.node, name)
                value = default
            env.set(name, value)
            self.sym_env[name] = Sym.var(name)
        self.func_stack = [fn.qualname]
        try:
            self.exec_stmts(fn.node.body, env)
        except _ReturnSignal:
            pass
        except _RaiseSignal:
            self.warn("raise")
        except _BudgetExceeded:
            self.stream.aborted = "step-budget"
            self.warn("step-budget")
        except RecursionError:
            self.stream.aborted = "recursion"
            self.warn("recursion")
        except Exception as exc:  # never let interpreter bugs break lint
            self.stream.aborted = f"internal:{type(exc).__name__}"
            self.warn(f"internal:{type(exc).__name__}")
        return self.stream

    def _default_for(self, node: ast.FunctionDef, name: str) -> Any:
        args = node.args
        positional = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        defaults = list(args.defaults)
        if name in positional and defaults:
            offset = len(positional) - len(defaults)
            idx = positional.index(name)
            if idx >= offset:
                try:
                    return self.eval(defaults[idx - offset], self.c.module_env)
                except Exception:
                    return UNKNOWN
        for kw, default in zip(args.kwonlyargs, args.kw_defaults):
            if kw.arg == name and default is not None:
                try:
                    return self.eval(default, self.c.module_env)
                except Exception:
                    return UNKNOWN
        return UNKNOWN

    # -- bookkeeping ----------------------------------------------------

    def warn(self, tag: str) -> None:
        if not self.silent:
            self.stream.warnings.add(tag)

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.c.step_budget:
            raise _BudgetExceeded()

    @property
    def current_func(self) -> str:
        return self.func_stack[-1] if self.func_stack else "<module>"

    def emit(
        self,
        *,
        kind: str,
        method: str,
        node: ast.AST,
        peer: Any = None,
        nbytes: Any = None,
        nelems: Any = None,
        event: tuple[int, int] | None = None,
        count: Any = 1,
        bounded: bool = False,
        is_sync: bool = False,
        is_mpi_block: bool = False,
        is_caf_put: bool = False,
        note: str | None = None,
    ) -> None:
        if self.silent:
            return
        self.stream.ops.append(
            StreamOp(
                kind=kind,
                method=method,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                func=self.current_func,
                rank=self.rank,
                peer=int(peer) if is_int(peer) else None,
                nbytes=int(nbytes) if is_int(nbytes) else None,
                nelems=int(nelems) if is_int(nelems) else None,
                event=event,
                count=int(count) if is_int(count) else 1,
                bounded=bounded,
                tentative=self.tentative > 0,
                is_sync=is_sync,
                is_mpi_block=is_mpi_block,
                is_caf_put=is_caf_put,
                loop_trips=tuple(self.loop_syms),
                loop_lines=tuple(self.loop_lines),
                note=note,
            )
        )

    def sym_of(self, node: ast.AST) -> Sym:
        return symlib.from_ast(node, self.sym_env)

    # -- statements -----------------------------------------------------

    def exec_stmts(self, stmts: list[ast.stmt], env: Env) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: Env) -> None:
        self.tick()
        method = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if method is not None:
            method(stmt, env)
        # Unknown statement kinds (Global, Nonlocal, Import, ...) are no-ops.

    def _stmt_Expr(self, stmt: ast.Expr, env: Env) -> None:
        self.eval(stmt.value, env)

    def _stmt_Assign(self, stmt: ast.Assign, env: Env) -> None:
        value = self.eval(stmt.value, env)
        for target in stmt.targets:
            self.assign(target, value, env, value_node=stmt.value)

    def _stmt_AnnAssign(self, stmt: ast.AnnAssign, env: Env) -> None:
        if stmt.value is not None:
            value = self.eval(stmt.value, env)
            self.assign(stmt.target, value, env, value_node=stmt.value)

    def _stmt_AugAssign(self, stmt: ast.AugAssign, env: Env) -> None:
        fn = _BINOP_FNS.get(type(stmt.op))
        load = ast.copy_location(
            {
                ast.Name: lambda t: ast.Name(id=t.id, ctx=ast.Load()),
                ast.Attribute: lambda t: ast.Attribute(
                    value=t.value, attr=t.attr, ctx=ast.Load()
                ),
                ast.Subscript: lambda t: ast.Subscript(
                    value=t.value, slice=t.slice, ctx=ast.Load()
                ),
            }[type(stmt.target)](stmt.target),
            stmt.target,
        )
        old = self.eval(load, env)
        new = self.eval(stmt.value, env)
        result = self.binop(fn, old, new) if fn else UNKNOWN
        self.assign(stmt.target, result, env, value_node=stmt)

    def _stmt_FunctionDef(self, stmt: ast.FunctionDef, env: Env) -> None:
        env.set(stmt.name, FuncVal(stmt, stmt.name, closure=env))

    _stmt_AsyncFunctionDef = _stmt_FunctionDef

    def _stmt_ClassDef(self, stmt: ast.ClassDef, env: Env) -> None:
        cv = ClassVal(stmt, env)
        self.c._class_registry.setdefault(stmt.name, cv)
        env.set(stmt.name, cv)

    def _stmt_Return(self, stmt: ast.Return, env: Env) -> None:
        value = self.eval(stmt.value, env) if stmt.value is not None else None
        raise _ReturnSignal(value)

    def _stmt_Break(self, stmt: ast.Break, env: Env) -> None:
        raise _BreakSignal()

    def _stmt_Continue(self, stmt: ast.Continue, env: Env) -> None:
        raise _ContinueSignal()

    def _stmt_Raise(self, stmt: ast.Raise, env: Env) -> None:
        raise _RaiseSignal()

    def _stmt_Assert(self, stmt: ast.Assert, env: Env) -> None:
        self.eval(stmt.test, env)

    def _stmt_Delete(self, stmt: ast.Delete, env: Env) -> None:
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                env.vars.pop(target.id, None)

    def _stmt_Pass(self, stmt: ast.Pass, env: Env) -> None:
        pass

    def _stmt_If(self, stmt: ast.If, env: Env) -> None:
        cond = self.truthy(self.eval(stmt.test, env))
        if cond is True:
            self.exec_stmts(stmt.body, env)
            return
        if cond is False:
            self.exec_stmts(stmt.orelse, env)
            return
        # Unknown condition. A guard whose arm only escapes control flow
        # (break / continue / return / raise) is assumed not taken.
        if self._escape_only(stmt.body) and not stmt.orelse:
            self.warn("assumed-no-break")
            return
        if stmt.orelse and self._escape_only(stmt.orelse) and not self._escape_only(
            stmt.body
        ):
            self.warn("assumed-no-break")
            self.exec_stmts(stmt.body, env)
            return
        self._both_arms(stmt.body, stmt.orelse, env)

    @staticmethod
    def _escape_only(body: list[ast.stmt]) -> bool:
        return len(body) == 1 and isinstance(
            body[0], (ast.Break, ast.Continue, ast.Return, ast.Raise)
        )

    def _both_arms(self, body: list[ast.stmt], orelse: list[ast.stmt], env: Env) -> None:
        self.warn("unresolved-branch")
        frames = self._env_frames(env)
        snapshot = [dict(f.vars) for f in frames]
        self.tentative += 1
        try:
            then_state = self._run_arm(body, env, frames, snapshot)
            else_state = self._run_arm(orelse, env, frames, snapshot)
        finally:
            self.tentative -= 1
        # Merge: bindings equal in both arms survive; divergent → Unknown.
        for frame, snap, tstate, estate in zip(frames, snapshot, then_state, else_state):
            merged = dict(snap)
            keys = set(tstate) | set(estate)
            for key in keys:
                tv = tstate.get(key, snap.get(key))
                ev = estate.get(key, snap.get(key))
                if tv is ev or self._same_value(tv, ev):
                    merged[key] = tv
                else:
                    merged[key] = UNKNOWN
            frame.vars.clear()
            frame.vars.update(merged)

    def _run_arm(
        self,
        body: list[ast.stmt],
        env: Env,
        frames: list[Env],
        snapshot: list[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        for frame, snap in zip(frames, snapshot):
            frame.vars.clear()
            frame.vars.update(snap)
        try:
            self.exec_stmts(body, env)
        except (_BreakSignal, _ContinueSignal, _ReturnSignal, _RaiseSignal):
            self.warn("assumed-no-break")
        return [dict(f.vars) for f in frames]

    @staticmethod
    def _env_frames(env: Env) -> list[Env]:
        frames = []
        cur: Env | None = env
        while cur is not None:
            frames.append(cur)
            cur = cur.parent
        return frames

    @staticmethod
    def _same_value(a: Any, b: Any) -> bool:
        if is_num(a) and is_num(b):
            return bool(a == b)
        if isinstance(a, str) and isinstance(b, str):
            return a == b
        if a is None and b is None:
            return True
        return a is b

    def _stmt_While(self, stmt: ast.While, env: Env) -> None:
        cap = self.c.loop_cap if self.c.loop_cap is not None else 4096
        trip_sym = symlib.UNKNOWN
        self.loop_syms.append(trip_sym)
        self.loop_lines.append(stmt.lineno)
        try:
            iters = 0
            while True:
                cond = self.truthy(self.eval(stmt.test, env))
                if cond is False:
                    break
                if cond is None:
                    self.warn("unresolved-while")
                    self.tentative += 1
                    try:
                        self.exec_stmts(stmt.body, env)
                    except _BreakSignal:
                        pass
                    except _ContinueSignal:
                        pass
                    finally:
                        self.tentative -= 1
                    break
                try:
                    self.exec_stmts(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                iters += 1
                if iters >= cap:
                    self.warn("loop-truncated")
                    self.stream.truncated = True
                    break
        finally:
            self.loop_syms.pop()
            self.loop_lines.pop()

    def _stmt_For(self, stmt: ast.For, env: Env) -> None:
        trip_sym = symlib.UNKNOWN
        if isinstance(stmt.iter, ast.Call):
            trip_sym = symlib.trip_from_range(stmt.iter, self.sym_env)
        items = self.concrete_iter(self.eval(stmt.iter, env))
        self.loop_syms.append(trip_sym)
        self.loop_lines.append(stmt.lineno)
        try:
            if items is None:
                self.warn("unresolved-iter")
                self.tentative += 1
                try:
                    self.assign(stmt.target, UNKNOWN, env)
                    self.exec_stmts(stmt.body, env)
                except (_BreakSignal, _ContinueSignal):
                    pass
                finally:
                    self.tentative -= 1
                return
            cap = self.c.loop_cap
            if cap is not None and len(items) > cap:
                items = items[:cap]
                self.warn("loop-truncated")
                self.stream.truncated = True
            broke = False
            for item in items:
                self.assign(stmt.target, item, env)
                try:
                    self.exec_stmts(stmt.body, env)
                except _BreakSignal:
                    broke = True
                    break
                except _ContinueSignal:
                    continue
            if not broke and stmt.orelse:
                self.exec_stmts(stmt.orelse, env)
        finally:
            self.loop_syms.pop()
            self.loop_lines.pop()

    def _stmt_Try(self, stmt: ast.Try, env: Env) -> None:
        try:
            self.exec_stmts(stmt.body, env)
        except _RaiseSignal:
            if stmt.handlers:
                handler = stmt.handlers[0]
                if handler.name:
                    env.set(handler.name, UNKNOWN)
                self.exec_stmts(handler.body, env)
            else:
                raise
        else:
            self.exec_stmts(stmt.orelse, env)
        finally:
            self.exec_stmts(stmt.finalbody, env)

    def _stmt_With(self, stmt: ast.With, env: Env) -> None:
        finishes = []
        for item in stmt.items:
            ctx = self.eval(item.context_expr, env)
            if isinstance(ctx, HandleVal) and ctx.kind == "finish":
                finishes.append((ctx, item.context_expr))
                self.emit(
                    kind="caf.finish",
                    method="finish_enter",
                    node=item.context_expr,
                    is_sync=True,
                )
            if item.optional_vars is not None:
                self.assign(item.optional_vars, ctx, env)
        try:
            self.exec_stmts(stmt.body, env)
        finally:
            for _ctx, node in reversed(finishes):
                self.emit(
                    kind="caf.finish", method="finish_exit", node=node, is_sync=True
                )

    # -- assignment -----------------------------------------------------

    def assign(
        self, target: ast.AST, value: Any, env: Env, value_node: ast.AST | None = None
    ) -> None:
        if isinstance(target, ast.Name):
            self._assign_name(target.id, value, env, value_node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            values = self.concrete_iter(value)
            starred = [i for i, e in enumerate(elts) if isinstance(e, ast.Starred)]
            if values is not None and not starred and len(values) == len(elts):
                for elt, val in zip(elts, values):
                    self.assign(elt, val, env)
            else:
                for elt in elts:
                    inner = elt.value if isinstance(elt, ast.Starred) else elt
                    self.assign(inner, UNKNOWN, env)
        elif isinstance(target, ast.Attribute):
            obj = self.eval(target.value, env)
            if isinstance(obj, InstanceVal):
                obj.attrs[target.attr] = value
        elif isinstance(target, ast.Subscript):
            obj = self.eval(target.value, env)
            key = self.eval_index(target.slice, env)
            if isinstance(obj, dict) and not is_unknown(key):
                try:
                    obj[key] = value
                except TypeError:
                    pass
            elif isinstance(obj, list) and is_int(key) and -len(obj) <= key < len(obj):
                obj[int(key)] = value
            # ArrayVal element stores don't change shape — no-op.

    def _assign_name(
        self, name: str, value: Any, env: Env, value_node: ast.AST | None
    ) -> None:
        old = env.get(name)
        if (
            isinstance(value, ArrayVal)
            and not value.known_shape
            and isinstance(old, ArrayVal)
            and old.known_shape
            and len(old.shape) == len(value.shape)
        ):
            # Steady-state: a known-extent buffer reassigned from a
            # data-dependent expression keeps its prior extent.
            self.warn("steady-state")
            value = ArrayVal(old.shape, value.itemsize, None)
        env.set(name, value)
        if value_node is not None and is_num(value):
            sym = self.sym_of(value_node)
            if sym.kind != "unknown":
                self.sym_env[name] = sym
            elif is_num(value):
                self.sym_env[name] = Sym.const(value)
        elif name in self.sym_env and value_node is not None:
            del self.sym_env[name]

    # -- expression evaluation ------------------------------------------

    def eval(self, node: ast.AST, env: Env) -> Any:
        self.tick()
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            return UNKNOWN
        return method(node, env)

    def _eval_Constant(self, node: ast.Constant, env: Env) -> Any:
        return node.value

    def _eval_Name(self, node: ast.Name, env: Env) -> Any:
        name = node.id
        if env.has(name):
            return env.get(name)
        if name in _NUMPY_ALIASES:
            return ModuleVal("numpy")
        if name == "math":
            return ModuleVal("math")
        if name in _BUILTINS:
            return BuiltinVal(name)
        if name in ("MpiWorld",):
            return self._mpi_world()
        if name in ("GasnetWorld",):
            return self._gasnet_world()
        return UNKNOWN

    def _eval_Attribute(self, node: ast.Attribute, env: Env) -> Any:
        obj = self.eval(node.value, env)
        return self.get_attr(obj, node.attr)

    def _eval_BinOp(self, node: ast.BinOp, env: Env) -> Any:
        fn = _BINOP_FNS.get(type(node.op))
        if fn is None:
            return UNKNOWN
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        return self.binop(fn, left, right)

    def _eval_UnaryOp(self, node: ast.UnaryOp, env: Env) -> Any:
        value = self.eval(node.operand, env)
        if isinstance(node.op, ast.Not):
            t = self.truthy(value)
            return UNKNOWN if t is None else (not t)
        if is_unknown(value):
            return UNKNOWN
        if isinstance(node.op, ast.USub):
            if is_num(value):
                return -value
            if isinstance(value, ArrayVal):
                return value.like()
            return UNKNOWN
        if isinstance(node.op, ast.UAdd):
            return value
        if isinstance(node.op, ast.Invert):
            if isinstance(value, ArrayVal):
                return ArrayVal(value.shape, value.itemsize, None, mask=value.mask)
            if is_int(value):
                return ~int(value)
        return UNKNOWN

    def _eval_BoolOp(self, node: ast.BoolOp, env: Env) -> Any:
        is_and = isinstance(node.op, ast.And)
        last: Any = UNKNOWN
        for value_node in node.values:
            value = self.eval(value_node, env)
            t = self.truthy(value)
            if t is None:
                return UNKNOWN
            if is_and and not t:
                return value
            if not is_and and t:
                return value
            last = value
        return last

    def _eval_Compare(self, node: ast.Compare, env: Env) -> Any:
        left = self.eval(node.left, env)
        result: Any = True
        for op, comp_node in zip(node.ops, node.comparators):
            right = self.eval(comp_node, env)
            one = self._compare_one(op, left, right)
            if isinstance(one, ArrayVal):
                return one
            if one is None:
                result = UNKNOWN
            elif result is not UNKNOWN:
                result = result and one
            left = right
        return result

    def _compare_one(self, op: ast.cmpop, left: Any, right: Any) -> Any:
        if isinstance(op, ast.Is):
            return left is right if (left is None or right is None) else None
        if isinstance(op, ast.IsNot):
            return left is not right if (left is None or right is None) else None
        if isinstance(op, (ast.In, ast.NotIn)):
            if isinstance(right, (list, tuple, dict, set)) and not is_unknown(left):
                try:
                    found = left in right
                except TypeError:
                    return None
                return found if isinstance(op, ast.In) else not found
            return None
        if isinstance(left, ArrayVal) or isinstance(right, ArrayVal):
            shape_l = left.shape if isinstance(left, ArrayVal) else ()
            shape_r = right.shape if isinstance(right, ArrayVal) else ()
            return ArrayVal(broadcast_shapes(shape_l, shape_r), 1, None, mask=True)
        if is_unknown(left) or is_unknown(right):
            return None
        fn = _CMP_FNS.get(type(op))
        if fn is None:
            return None
        try:
            return bool(fn(left, right))
        except TypeError:
            return None

    def _eval_Call(self, node: ast.Call, env: Env) -> Any:
        func = self.eval(node.func, env)
        args: list[Any] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                spread = self.concrete_iter(self.eval(arg.value, env))
                if spread is None:
                    args.append(UNKNOWN)
                else:
                    args.extend(spread)
            else:
                args.append(self.eval(arg, env))
        kwargs: dict[str, Any] = {}
        for kw in node.keywords:
            if kw.arg is None:
                value = self.eval(kw.value, env)
                if isinstance(value, dict):
                    kwargs.update({k: v for k, v in value.items() if isinstance(k, str)})
            else:
                kwargs[kw.arg] = self.eval(kw.value, env)
        return self.call(func, args, kwargs, node)

    def _eval_Tuple(self, node: ast.Tuple, env: Env) -> Any:
        return tuple(self.eval(e, env) for e in node.elts)

    def _eval_List(self, node: ast.List, env: Env) -> Any:
        return [self.eval(e, env) for e in node.elts]

    def _eval_Set(self, node: ast.Set, env: Env) -> Any:
        out = set()
        for e in node.elts:
            v = self.eval(e, env)
            try:
                out.add(v)
            except TypeError:
                return UNKNOWN
        return out

    def _eval_Dict(self, node: ast.Dict, env: Env) -> Any:
        out: dict[Any, Any] = {}
        for key_node, value_node in zip(node.keys, node.values):
            if key_node is None:
                spread = self.eval(value_node, env)
                if isinstance(spread, dict):
                    out.update(spread)
                continue
            key = self.eval(key_node, env)
            if is_unknown(key):
                return UNKNOWN
            try:
                out[key] = self.eval(value_node, env)
            except TypeError:
                return UNKNOWN
        return out

    def _eval_Subscript(self, node: ast.Subscript, env: Env) -> Any:
        obj = self.eval(node.value, env)
        key = self.eval_index(node.slice, env)
        return self.getitem(obj, key)

    def _eval_Slice(self, node: ast.Slice, env: Env) -> Any:
        def part(sub: ast.AST | None) -> Any:
            return None if sub is None else self.eval(sub, env)

        return slice(part(node.lower), part(node.upper), part(node.step))

    def _eval_IfExp(self, node: ast.IfExp, env: Env) -> Any:
        cond = self.truthy(self.eval(node.test, env))
        if cond is True:
            return self.eval(node.body, env)
        if cond is False:
            return self.eval(node.orelse, env)
        a = self.eval(node.body, env)
        b = self.eval(node.orelse, env)
        return a if self._same_value(a, b) else UNKNOWN

    def _eval_Lambda(self, node: ast.Lambda, env: Env) -> Any:
        wrapper = ast.FunctionDef(
            name="<lambda>",
            args=node.args,
            body=[ast.Return(value=node.body)],
            decorator_list=[],
        )
        ast.copy_location(wrapper, node)
        ast.fix_missing_locations(wrapper)
        return FuncVal(wrapper, "<lambda>", closure=env)

    def _eval_JoinedStr(self, node: ast.JoinedStr, env: Env) -> Any:
        return "?"

    def _eval_Starred(self, node: ast.Starred, env: Env) -> Any:
        return self.eval(node.value, env)

    def _eval_ListComp(self, node: ast.ListComp, env: Env) -> Any:
        return self._comprehension(node, env, kind="list")

    def _eval_SetComp(self, node: ast.SetComp, env: Env) -> Any:
        out = self._comprehension(node, env, kind="list")
        if is_unknown(out):
            return UNKNOWN
        try:
            return set(out)
        except TypeError:
            return UNKNOWN

    def _eval_GeneratorExp(self, node: ast.GeneratorExp, env: Env) -> Any:
        return self._comprehension(node, env, kind="list")

    def _eval_DictComp(self, node: ast.DictComp, env: Env) -> Any:
        return self._comprehension(node, env, kind="dict")

    def _comprehension(self, node: Any, env: Env, kind: str) -> Any:
        scope = env.child()
        out_list: list[Any] = []
        out_dict: dict[Any, Any] = {}

        def rec(gen_idx: int) -> bool:
            if gen_idx == len(node.generators):
                if kind == "dict":
                    key = self.eval(node.key, scope)
                    if is_unknown(key):
                        return False
                    try:
                        out_dict[key] = self.eval(node.value, scope)
                    except TypeError:
                        return False
                else:
                    out_list.append(self.eval(node.elt, scope))
                return True
            gen = node.generators[gen_idx]
            items = self.concrete_iter(self.eval(gen.iter, scope))
            if items is None:
                return False
            cap = self.c.loop_cap
            if cap is not None and len(items) > 4 * cap:
                self.warn("loop-truncated")
                self.stream.truncated = True
                items = items[: 4 * cap]
            for item in items:
                self.assign(gen.target, item, scope)
                keep = True
                for cond in gen.ifs:
                    t = self.truthy(self.eval(cond, scope))
                    if t is None:
                        return False
                    if not t:
                        keep = False
                        break
                if keep and not rec(gen_idx + 1):
                    return False
            return True

        ok = rec(0)
        if not ok:
            return UNKNOWN
        return out_dict if kind == "dict" else out_list

    # -- operators ------------------------------------------------------

    def binop(self, fn: Any, left: Any, right: Any) -> Any:
        if isinstance(left, ArrayVal) or isinstance(right, ArrayVal):
            return self._array_binop(fn, left, right)
        if is_unknown(left) or is_unknown(right):
            return UNKNOWN
        if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
            if fn is operator.add and type(left) is type(right):
                return fn(left, right)
        if is_num(left) and is_num(right):
            try:
                return fn(left, right)
            except (ZeroDivisionError, ValueError, OverflowError, TypeError):
                return UNKNOWN
        if isinstance(left, str) and isinstance(right, str) and fn is operator.add:
            return left + right
        if isinstance(left, (list, tuple)) and is_int(right) and fn is operator.mul:
            return left * int(right)
        return UNKNOWN

    def _array_binop(self, fn: Any, left: Any, right: Any) -> Any:
        la = left if isinstance(left, ArrayVal) else None
        ra = right if isinstance(right, ArrayVal) else None
        if (
            la is not None
            and ra is not None
            and la.data is not None
            and ra.data is not None
        ):
            try:
                data = fn(la.data, ra.data)
                return ArrayVal(data.shape, data.dtype.itemsize, data)
            except Exception:
                pass
        if la is not None and ra is None and la.data is not None and is_num(right):
            try:
                data = fn(la.data, right)
                return ArrayVal(data.shape, data.dtype.itemsize, data)
            except Exception:
                pass
        if ra is not None and la is None and ra.data is not None and is_num(left):
            try:
                data = fn(left, ra.data)
                return ArrayVal(data.shape, data.dtype.itemsize, data)
            except Exception:
                pass
        shape_l = la.shape if la is not None else ()
        shape_r = ra.shape if ra is not None else ()
        shape = broadcast_shapes(shape_l, shape_r)
        itemsize = promote_itemsize(left, right)
        mask = bool((la is not None and la.mask) or (ra is not None and ra.mask))
        if fn in (operator.and_, operator.or_, operator.xor) and mask:
            return ArrayVal(shape, 1, None, mask=True)
        return ArrayVal(shape, itemsize, None, mask=mask)

    def truthy(self, value: Any) -> bool | None:
        if is_unknown(value) or isinstance(value, ArrayVal):
            return None
        if isinstance(
            value, (HandleVal, InstanceVal, FuncVal, ClassVal, ModuleVal, RngVal)
        ):
            return True
        try:
            return bool(value)
        except Exception:
            return None

    # -- attribute access -----------------------------------------------

    def get_attr(self, obj: Any, attr: str) -> Any:
        if is_unknown(obj):
            return UNKNOWN
        if isinstance(obj, ModuleVal):
            return self._module_attr(obj, attr)
        if isinstance(obj, ArrayVal):
            return self._array_attr(obj, attr)
        if isinstance(obj, HandleVal):
            return self._handle_attr(obj, attr)
        if isinstance(obj, InstanceVal):
            if attr in obj.attrs:
                return obj.attrs[attr]
            cv = self.c._class_registry.get(obj.cls_name)
            if cv is not None:
                fn = self._class_method(cv, attr)
                if fn is not None:
                    return FuncVal(
                        fn, f"{obj.cls_name}.{attr}", closure=cv.closure, self_val=obj
                    )
            return UNKNOWN
        if isinstance(obj, (RngVal, dict, list, tuple, set, str)):
            return MethodVal(obj, attr)
        if isinstance(obj, ClassVal):
            fn = self._class_method(obj, attr)
            if fn is not None:
                return FuncVal(fn, f"{obj.node.name}.{attr}", closure=obj.closure)
            return UNKNOWN
        return UNKNOWN

    @staticmethod
    def _class_method(cv: ClassVal, name: str) -> ast.FunctionDef | None:
        for stmt in cv.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == name:
                    return stmt
        return None

    def _module_attr(self, mod: ModuleVal, attr: str) -> Any:
        if mod.name == "numpy":
            if attr in ("random", "fft", "linalg"):
                return ModuleVal(f"numpy.{attr}")
            if attr == "pi":
                return math.pi
            if attr == "e":
                return math.e
            if attr == "newaxis":
                return None
            if attr in ("inf", "nan"):
                return math.inf if attr == "inf" else math.nan
            if attr in ("float64", "float32", "int64", "int32", "uint64", "uint32",
                        "int8", "uint8", "bool_", "complex128", "complex64", "intp"):
                return DtypeVal(attr)
            return ModuleFn("numpy", attr)
        if mod.name == "math":
            if attr == "pi":
                return math.pi
            if attr == "e":
                return math.e
            return ModuleFn("math", attr)
        return ModuleFn(mod.name, attr)

    def _array_attr(self, arr: ArrayVal, attr: str) -> Any:
        if attr == "T":
            return ArrayVal(tuple(reversed(arr.shape)), arr.itemsize,
                            arr.data.T if arr.data is not None else None, arr.mask)
        if attr == "size":
            return arr.size
        if attr == "nbytes":
            return arr.nbytes
        if attr == "shape":
            return tuple(d if is_int(d) else UNKNOWN for d in arr.shape)
        if attr == "ndim":
            return len(arr.shape)
        if attr == "itemsize":
            return arr.itemsize
        if attr in ("real", "imag"):
            return ArrayVal(arr.shape, max(arr.itemsize // 2, 1) if arr.itemsize in (8, 16) else arr.itemsize, None)
        if attr == "dtype":
            return UNKNOWN
        return MethodVal(arr, attr)

    def _handle_attr(self, handle: HandleVal, attr: str) -> Any:
        if handle.kind == "image":
            if attr == "rank":
                return self.rank
            if attr == "nranks":
                return self.nranks
            if attr == "mpi":
                return MethodVal(handle, "mpi")
            if attr == "cluster":
                if self._cluster is None:
                    self._cluster = HandleVal("cluster", uid=next(self.uid))
                return self._cluster
            return MethodVal(handle, attr)
        if handle.kind == "coarray":
            if attr == "local":
                return ArrayVal(handle.meta.get("shape", (UNKNOWN,)),
                                handle.meta.get("itemsize", 8), None)
            if attr == "shape":
                return handle.meta.get("shape", (UNKNOWN,))
            return MethodVal(handle, attr)
        if handle.kind == "mpi":
            if attr == "COMM_WORLD":
                return self._comm_world()
            if attr == "rank":
                return self.rank
            if attr == "size":
                return self.nranks
            return MethodVal(handle, attr)
        if handle.kind == "comm":
            if attr == "rank":
                return self.rank
            if attr == "size":
                return self.nranks
            return MethodVal(handle, attr)
        if handle.kind == "window":
            if attr == "local":
                return ArrayVal((handle.meta.get("nelems", UNKNOWN),),
                                handle.meta.get("itemsize", 8), None)
            return MethodVal(handle, attr)
        return MethodVal(handle, attr)

    # -- shared protocol handles ----------------------------------------

    def _mpi_world(self) -> HandleVal:
        if self._mpi is None:
            self._mpi = HandleVal("mpi", uid=next(self.uid))
        return self._mpi

    def _comm_world(self) -> HandleVal:
        if self._comm is None:
            self._comm = HandleVal("comm", uid=next(self.uid))
        return self._comm

    def _gasnet_world(self) -> HandleVal:
        if self._gasnet is None:
            self._gasnet = HandleVal("gasnet", uid=next(self.uid))
        return self._gasnet

    # -- calls ----------------------------------------------------------

    def call(
        self, func: Any, args: list[Any], kwargs: dict[str, Any], node: ast.Call
    ) -> Any:
        if isinstance(func, FuncVal):
            return self.invoke(func, args, kwargs, node)
        if isinstance(func, ClassVal):
            return self.instantiate(func, args, kwargs, node)
        if isinstance(func, MethodVal):
            return self.call_method(func.obj, func.name, args, kwargs, node)
        if isinstance(func, ModuleFn):
            return self.numpy_call(func, args, kwargs, node)
        if isinstance(func, BuiltinVal):
            return self.builtin_call(func.name, args, kwargs, node)
        if isinstance(func, DtypeVal):
            if args and is_num(args[0]):
                try:
                    return np.dtype(func.name).type(args[0]).item()
                except Exception:
                    return UNKNOWN
            if args and isinstance(args[0], ArrayVal):
                return ArrayVal(args[0].shape, itemsize_of(func.name), None)
            return UNKNOWN
        if isinstance(func, HandleVal) and func.kind in ("mpi", "gasnet"):
            return func  # MpiWorld.get(...)/GasnetWorld(...)-style chains
        self.escape_args(args, kwargs)
        return UNKNOWN

    def escape_args(self, args: list[Any], kwargs: dict[str, Any]) -> None:
        def visit(value: Any) -> None:
            if isinstance(value, HandleVal) and value.kind == "event":
                if not value.escaped:
                    value.escaped = True
                    self.warn(f"escape:event#{value.uid}")
            elif isinstance(value, (list, tuple, set)):
                for item in value:
                    visit(item)
            elif isinstance(value, dict):
                for item in value.values():
                    visit(item)
            elif isinstance(value, InstanceVal):
                for item in value.attrs.values():
                    if isinstance(item, HandleVal):
                        visit(item)

        for a in args:
            visit(a)
        for v in kwargs.values():
            visit(v)

    def invoke(
        self, fv: FuncVal, args: list[Any], kwargs: dict[str, Any], node: ast.Call
    ) -> Any:
        if len(self.func_stack) >= _MAX_CALL_DEPTH or fv.node in self.node_stack:
            self.warn("recursion")
            self.escape_args(args, kwargs)
            return UNKNOWN
        env = Env(fv.closure if fv.closure is not None else self.c.module_env)
        fn_args = fv.node.args
        positional = [a.arg for a in fn_args.posonlyargs] + [a.arg for a in fn_args.args]
        if fv.self_val is not None:
            args = [fv.self_val] + args
        # Bind positional parameters.
        for i, name in enumerate(positional):
            if i < len(args):
                env.set(name, args[i])
        if fn_args.vararg is not None:
            env.set(fn_args.vararg.arg, tuple(args[len(positional):]))
        # Defaults for unbound positionals.
        defaults = list(fn_args.defaults)
        offset = len(positional) - len(defaults)
        for i, name in enumerate(positional):
            if i >= len(args) and name not in env.vars:
                if name in kwargs:
                    env.set(name, kwargs.pop(name))
                elif i >= offset:
                    env.set(name, self._safe_eval_default(defaults[i - offset], fv))
                else:
                    env.set(name, UNKNOWN)
        for kw, default in zip(fn_args.kwonlyargs, fn_args.kw_defaults):
            if kw.arg in kwargs:
                env.set(kw.arg, kwargs.pop(kw.arg))
            elif default is not None:
                env.set(kw.arg, self._safe_eval_default(default, fv))
            else:
                env.set(kw.arg, UNKNOWN)
        if fn_args.kwarg is not None:
            env.set(fn_args.kwarg.arg, dict(kwargs))
        self.func_stack.append(fv.qualname)
        self.node_stack.append(fv.node)
        try:
            self.exec_stmts(fv.node.body, env)
            return None
        except _ReturnSignal as ret:
            return ret.value
        finally:
            self.func_stack.pop()
            self.node_stack.pop()

    def _safe_eval_default(self, default: ast.AST, fv: FuncVal) -> Any:
        try:
            return self.eval(default, fv.closure or self.c.module_env)
        except Exception:
            return UNKNOWN

    def instantiate(
        self, cv: ClassVal, args: list[Any], kwargs: dict[str, Any], node: ast.Call
    ) -> Any:
        inst = InstanceVal(cv.node.name)
        init = self._class_method(cv, "__init__")
        if init is not None:
            fv = FuncVal(init, f"{cv.node.name}.__init__", closure=cv.closure,
                         self_val=inst)
            self.invoke(fv, args, kwargs, node)
        else:
            for key, value in kwargs.items():
                inst.attrs[key] = value
        return inst

    # -- builtins -------------------------------------------------------

    def builtin_call(
        self, name: str, args: list[Any], kwargs: dict[str, Any], node: ast.Call
    ) -> Any:
        if name == "print":
            return None
        if name == "isinstance":
            return UNKNOWN
        if name == "len":
            if args and isinstance(args[0], ArrayVal):
                d = args[0].shape[0] if args[0].shape else UNKNOWN
                return int(d) if is_int(d) else UNKNOWN
            if args and isinstance(args[0], (list, tuple, dict, set, str, range)):
                return len(args[0])
            return UNKNOWN
        if name == "range":
            if all(is_int(a) for a in args) and 1 <= len(args) <= 3:
                try:
                    return range(*[int(a) for a in args])
                except (ValueError, TypeError):
                    return UNKNOWN
            return UNKNOWN
        if name in ("int", "float", "bool", "abs", "round"):
            if args and is_num(args[0]):
                try:
                    return {"int": int, "float": float, "bool": bool, "abs": abs,
                            "round": round}[name](args[0])
                except (ValueError, OverflowError):
                    return UNKNOWN
            return UNKNOWN
        if name in ("max", "min", "sum"):
            fn = {"max": max, "min": min, "sum": sum}[name]
            if len(args) == 1:
                items = self.concrete_iter(args[0])
                if items is not None and items and all(is_num(i) for i in items):
                    return fn(items)
                return UNKNOWN
            if args and all(is_num(a) for a in args):
                return fn(args)
            return UNKNOWN
        if name == "enumerate":
            items = self.concrete_iter(args[0]) if args else None
            if items is None:
                return UNKNOWN
            start = args[1] if len(args) > 1 and is_int(args[1]) else 0
            return [(start + i, v) for i, v in enumerate(items)]
        if name == "zip":
            lists = [self.concrete_iter(a) for a in args]
            if any(ls is None for ls in lists):
                return UNKNOWN
            return [tuple(t) for t in zip(*lists)]
        if name in ("sorted", "reversed", "list", "tuple", "set"):
            items = self.concrete_iter(args[0]) if args else []
            if items is None:
                return UNKNOWN
            if name == "sorted":
                try:
                    return sorted(items)
                except TypeError:
                    return list(items)
            if name == "reversed":
                return list(reversed(items))
            if name == "tuple":
                return tuple(items)
            if name == "set":
                try:
                    return set(items)
                except TypeError:
                    return UNKNOWN
            return list(items)
        if name == "dict":
            if not args:
                return dict(kwargs)
            return UNKNOWN
        if name == "str":
            return "?"
        if name == "divmod":
            if len(args) == 2 and all(is_num(a) for a in args):
                try:
                    return divmod(args[0], args[1])
                except ZeroDivisionError:
                    return UNKNOWN
            return UNKNOWN
        if name == "pow":
            if all(is_num(a) for a in args):
                try:
                    return pow(*args)
                except (ValueError, ZeroDivisionError):
                    return UNKNOWN
            return UNKNOWN
        if name in ("any", "all"):
            items = self.concrete_iter(args[0]) if args else None
            if items is None or any(is_unknown(i) or isinstance(i, ArrayVal) for i in items):
                return UNKNOWN
            return any(items) if name == "any" else all(items)
        return UNKNOWN

    # -- iteration ------------------------------------------------------

    def concrete_iter(self, value: Any) -> list[Any] | None:
        if isinstance(value, range):
            if len(value) > _MAX_CONCRETE_ELEMS:
                return None
            return list(value)
        if isinstance(value, (list, tuple)):
            return list(value)
        if isinstance(value, dict):
            return list(value.keys())
        if isinstance(value, set):
            return sorted(value, key=repr)
        if isinstance(value, ArrayVal) and value.data is not None:
            return [self._wrap_np(row) for row in value.data]
        return None

    @staticmethod
    def _wrap_np(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            return ArrayVal(value.shape, value.dtype.itemsize, value)
        if isinstance(value, np.generic):
            return value.item()
        return value

    # -- indexing -------------------------------------------------------

    def eval_index(self, node: ast.AST, env: Env) -> Any:
        if isinstance(node, ast.Tuple):
            return tuple(self.eval(e, env) for e in node.elts)
        return self.eval(node, env)

    def getitem(self, obj: Any, key: Any) -> Any:
        if is_unknown(obj):
            return UNKNOWN
        if isinstance(obj, ArrayVal):
            return self._array_getitem(obj, key)
        if isinstance(obj, dict):
            if is_unknown(key):
                return UNKNOWN
            try:
                return obj.get(key, UNKNOWN)
            except TypeError:
                return UNKNOWN
        if isinstance(obj, (list, tuple, str, range)):
            if is_int(key):
                try:
                    item = obj[int(key)]
                except IndexError:
                    return UNKNOWN
                return self._wrap_np(item)
            if isinstance(key, slice):
                try:
                    return list(obj[key]) if not isinstance(obj, (str, tuple)) else obj[key]
                except (TypeError, ValueError):
                    return UNKNOWN
            return UNKNOWN
        return UNKNOWN

    def _array_getitem(self, arr: ArrayVal, key: Any) -> Any:
        idx = key if isinstance(key, tuple) else (key,)
        if arr.data is not None:
            concrete = self._concrete_index(idx)
            if concrete is not None:
                try:
                    result = arr.data[concrete]
                except (IndexError, TypeError, ValueError):
                    result = None
                if result is not None:
                    return self._wrap_np(result)
        dims = list(arr.shape)
        out: list[Any] = []
        pos = 0
        for part in idx:
            if part is Ellipsis:
                # Align remaining indices to the trailing dims.
                explicit = sum(1 for p in idx if p is not None and p is not Ellipsis) - 1
                while len(dims) - pos > explicit - (idx.index(part)):
                    out.append(dims[pos])
                    pos += 1
                    if pos >= len(dims):
                        break
                continue
            if part is None:
                out.append(1)
                continue
            if pos >= len(dims):
                return UNKNOWN
            dim = dims[pos]
            if is_int(part):
                pos += 1
            elif isinstance(part, slice):
                out.append(self._slice_len(part, dim))
                pos += 1
            elif isinstance(part, ArrayVal):
                if part.mask:
                    if is_int(dim):
                        self.warn("mask-half")
                        out.append(max(int(dim) // 2, 1))
                    else:
                        out.append(UNKNOWN)
                    pos += 1
                else:
                    out.extend(part.shape)
                    pos += 1
            else:
                out.append(UNKNOWN)
                pos += 1
        out.extend(dims[pos:])
        if not out:
            return UNKNOWN  # scalar element of a data-unknown array
        return ArrayVal(tuple(out), arr.itemsize, None, mask=arr.mask)

    @staticmethod
    def _concrete_index(idx: tuple[Any, ...]) -> Any | None:
        parts: list[Any] = []
        for part in idx:
            if is_int(part):
                parts.append(int(part))
            elif isinstance(part, slice):
                for sub in (part.start, part.stop, part.step):
                    if sub is not None and not is_int(sub):
                        return None
                parts.append(part)
            elif part is None or part is Ellipsis:
                parts.append(part)
            elif isinstance(part, ArrayVal) and part.data is not None:
                parts.append(part.data)
            else:
                return None
        return tuple(parts) if len(parts) > 1 else parts[0]

    @staticmethod
    def _slice_len(sl: slice, dim: Any) -> Any:
        parts = (sl.start, sl.stop, sl.step)
        if any(p is not None and not is_int(p) for p in parts):
            return UNKNOWN
        if not is_int(dim):
            # Unbounded slices keep the unknown extent marker.
            if sl.start in (None, 0) and sl.stop is None and sl.step in (None, 1):
                return dim
            return UNKNOWN
        start = int(sl.start) if sl.start is not None else None
        stop = int(sl.stop) if sl.stop is not None else None
        step = int(sl.step) if sl.step is not None else None
        try:
            return len(range(*slice(start, stop, step).indices(int(dim))))
        except (ValueError, TypeError):
            return UNKNOWN

    # -- payload sizing -------------------------------------------------

    def nbytes_of(self, value: Any, itemsize: int | None = None) -> Any:
        n = self.nelems_of(value)
        if not is_int(n):
            return UNKNOWN
        if isinstance(value, ArrayVal) and itemsize is None:
            return n * value.itemsize
        return n * (itemsize if itemsize is not None else 8)

    def nelems_of(self, value: Any) -> Any:
        if isinstance(value, ArrayVal):
            return value.size
        if isinstance(value, (list, tuple)):
            total = 0
            for item in value:
                sub = self.nelems_of(item)
                if not is_int(sub):
                    return UNKNOWN
                total += sub
            return total
        if is_num(value):
            return 1
        return UNKNOWN

    # -- method calls ---------------------------------------------------

    def call_method(
        self, obj: Any, name: str, args: list[Any], kwargs: dict[str, Any],
        node: ast.Call,
    ) -> Any:
        if isinstance(obj, HandleVal):
            return self.protocol_call(obj, name, args, kwargs, node)
        if isinstance(obj, ArrayVal):
            return self.array_method(obj, name, args, kwargs)
        if isinstance(obj, RngVal):
            return self.rng_method(name, args, kwargs)
        if isinstance(obj, dict):
            return self._dict_method(obj, name, args)
        if isinstance(obj, list):
            return self._list_method(obj, name, args)
        if isinstance(obj, set):
            if name == "add" and args and not is_unknown(args[0]):
                try:
                    obj.add(args[0])
                except TypeError:
                    pass
                return None
            return UNKNOWN
        if isinstance(obj, str):
            return UNKNOWN
        self.escape_args(args, kwargs)
        return UNKNOWN

    def _dict_method(self, obj: dict, name: str, args: list[Any]) -> Any:
        if name == "items":
            return [(k, v) for k, v in obj.items()]
        if name == "keys":
            return list(obj.keys())
        if name == "values":
            return list(obj.values())
        if name == "get":
            key = args[0] if args else UNKNOWN
            if is_unknown(key):
                return UNKNOWN
            default = args[1] if len(args) > 1 else None
            try:
                return obj.get(key, default)
            except TypeError:
                return UNKNOWN
        if name == "pop":
            key = args[0] if args else UNKNOWN
            if not is_unknown(key):
                try:
                    return obj.pop(key, UNKNOWN)
                except TypeError:
                    return UNKNOWN
            return UNKNOWN
        if name == "setdefault":
            key = args[0] if args else UNKNOWN
            if not is_unknown(key):
                try:
                    return obj.setdefault(key, args[1] if len(args) > 1 else None)
                except TypeError:
                    return UNKNOWN
            return UNKNOWN
        if name == "update" and args and isinstance(args[0], dict):
            obj.update(args[0])
            return None
        return UNKNOWN

    def _list_method(self, obj: list, name: str, args: list[Any]) -> Any:
        if name == "append":
            obj.append(args[0] if args else UNKNOWN)
            return None
        if name == "extend":
            items = self.concrete_iter(args[0]) if args else None
            if items is not None:
                obj.extend(items)
            else:
                obj.append(UNKNOWN)
            return None
        if name == "pop":
            if obj:
                if not args:
                    return obj.pop()
                if is_int(args[0]) and -len(obj) <= args[0] < len(obj):
                    return obj.pop(int(args[0]))
            return UNKNOWN
        if name == "insert" and len(args) == 2 and is_int(args[0]):
            obj.insert(int(args[0]), args[1])
            return None
        if name == "sort":
            try:
                obj.sort()
            except TypeError:
                pass
            return None
        if name == "index" and args:
            try:
                return obj.index(args[0])
            except (ValueError, TypeError):
                return UNKNOWN
        if name == "count" and args:
            try:
                return obj.count(args[0])
            except TypeError:
                return UNKNOWN
        if name == "copy":
            return list(obj)
        if name == "remove" and args:
            try:
                obj.remove(args[0])
            except (ValueError, TypeError):
                pass
            return None
        return UNKNOWN

    def array_method(
        self, arr: ArrayVal, name: str, args: list[Any], kwargs: dict[str, Any]
    ) -> Any:
        if name == "reshape":
            shape = args[0] if len(args) == 1 and isinstance(args[0], (tuple, list)) else tuple(args)
            shape = self._resolve_shape(shape, arr.size)
            data = None
            if arr.data is not None and all(is_int(d) for d in shape):
                try:
                    data = arr.data.reshape([int(d) for d in shape])
                except ValueError:
                    data = None
            return ArrayVal(tuple(shape), arr.itemsize, data, arr.mask)
        if name == "astype":
            dtype = args[0] if args else kwargs.get("dtype")
            itemsize = self._itemsize_from(dtype, arr.itemsize)
            data = None
            if arr.data is not None and isinstance(dtype, DtypeVal):
                try:
                    data = arr.data.astype(dtype.name)
                except TypeError:
                    data = None
            return ArrayVal(arr.shape, itemsize, data)
        if name in ("copy", "view", "conj", "conjugate"):
            return ArrayVal(arr.shape, arr.itemsize,
                            arr.data.copy() if arr.data is not None else None, arr.mask)
        if name in ("ravel", "flatten"):
            return ArrayVal((arr.size if is_int(arr.size) else UNKNOWN,),
                            arr.itemsize,
                            arr.data.ravel() if arr.data is not None else None)
        if name == "transpose":
            return ArrayVal(tuple(reversed(arr.shape)), arr.itemsize, None, arr.mask)
        if name in ("sum", "min", "max", "mean", "prod", "std", "var", "dot"):
            axis = kwargs.get("axis", args[0] if args and name != "dot" else None)
            if axis is None:
                if arr.data is not None and name != "dot":
                    try:
                        return self._wrap_np(getattr(arr.data, name)())
                    except Exception:
                        return UNKNOWN
                return UNKNOWN
            if is_int(axis) and 0 <= int(axis) < len(arr.shape):
                shape = tuple(d for i, d in enumerate(arr.shape) if i != int(axis))
                return ArrayVal(shape, arr.itemsize, None)
            return UNKNOWN
        if name in ("any", "all", "argmax", "argmin", "item", "tolist"):
            if arr.data is not None:
                try:
                    return self._wrap_np(getattr(arr.data, name)(*[
                        int(a) for a in args if is_int(a)
                    ]))
                except Exception:
                    return UNKNOWN
            if name == "tolist":
                n = arr.shape[0] if len(arr.shape) == 1 and is_int(arr.shape[0]) else None
                if n is not None and n <= _MAX_CONCRETE_ELEMS:
                    return [UNKNOWN] * int(n)
            return UNKNOWN
        if name == "fill":
            return None
        if name == "tobytes":
            return UNKNOWN
        return UNKNOWN

    def _resolve_shape(self, shape: Any, total: Any) -> tuple[Any, ...]:
        dims = list(shape) if isinstance(shape, (tuple, list)) else [shape]
        out = [int(d) if is_int(d) else (d if d == -1 else UNKNOWN) for d in dims]
        if -1 in out and is_int(total):
            known = 1
            ok = True
            for d in out:
                if is_int(d) and d != -1:
                    known *= int(d)
                elif d != -1:
                    ok = False
            if ok and known > 0 and int(total) % known == 0:
                out[out.index(-1)] = int(total) // known
        return tuple(UNKNOWN if d == -1 else d for d in out)

    @staticmethod
    def _itemsize_from(dtype: Any, default: int = 8) -> int:
        if isinstance(dtype, DtypeVal):
            return itemsize_of(dtype.name, default)
        if isinstance(dtype, str):
            return itemsize_of(dtype, default)
        return default

    def rng_method(self, name: str, args: list[Any], kwargs: dict[str, Any]) -> Any:
        size = kwargs.get("size")
        if size is None and name in ("standard_normal", "random") and args:
            size = args[0]
        if name in ("integers", "standard_normal", "random", "uniform", "normal",
                    "choice", "permutation", "exponential", "poisson"):
            itemsize = 8
            if name == "integers":
                itemsize = self._itemsize_from(kwargs.get("dtype"), 8)
            if size is None:
                if name == "permutation" and args and is_int(args[0]):
                    return ArrayVal((int(args[0]),), 8, None)
                return UNKNOWN
            if is_int(size):
                return ArrayVal((int(size),), itemsize, None)
            if isinstance(size, (tuple, list)):
                return ArrayVal(tuple(int(d) if is_int(d) else UNKNOWN for d in size),
                                itemsize, None)
            return ArrayVal((UNKNOWN,), itemsize, None)
        if name == "shuffle":
            return None
        return UNKNOWN

    # -- numpy module functions -----------------------------------------

    def numpy_call(
        self, fn: ModuleFn, args: list[Any], kwargs: dict[str, Any], node: ast.Call
    ) -> Any:
        name = fn.name
        if fn.module == "math":
            mathfn = getattr(math, name, None)
            if mathfn is not None and all(is_num(a) for a in args):
                try:
                    return mathfn(*args)
                except (ValueError, OverflowError, TypeError):
                    return UNKNOWN
            return UNKNOWN
        if fn.module == "numpy.random":
            if name == "default_rng":
                return RngVal()
            return UNKNOWN
        if fn.module == "numpy.fft":
            if args and isinstance(args[0], ArrayVal):
                return ArrayVal(args[0].shape, 16, None)
            return UNKNOWN
        if fn.module == "numpy.linalg":
            if name == "solve" and len(args) >= 2 and isinstance(args[1], ArrayVal):
                return args[1].like()
            if name in ("norm", "det", "cond"):
                return UNKNOWN
            if name == "inv" and args and isinstance(args[0], ArrayVal):
                return args[0].like()
            return UNKNOWN
        if fn.module != "numpy":
            return UNKNOWN

        itemsize = self._itemsize_from(kwargs.get("dtype"), 8)
        if name in ("zeros", "ones", "empty", "full"):
            shape = args[0] if args else UNKNOWN
            dims = shape if isinstance(shape, (tuple, list)) else (shape,)
            dtype_idx = 2 if name == "full" else 1
            if "dtype" not in kwargs and len(args) > dtype_idx:
                itemsize = self._itemsize_from(args[dtype_idx], 8)
            return ArrayVal(tuple(int(d) if is_int(d) else UNKNOWN for d in dims),
                            itemsize, None)
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            if args and isinstance(args[0], ArrayVal):
                return args[0].like()
            return UNKNOWN
        if name in ("array", "asarray", "ascontiguousarray", "asfortranarray", "copy"):
            if not args:
                return UNKNOWN
            value = args[0]
            if isinstance(value, ArrayVal):
                if "dtype" in kwargs:
                    return ArrayVal(value.shape, itemsize, None, value.mask)
                return ArrayVal(value.shape, value.itemsize, value.data, value.mask)
            if is_num(value):
                return ArrayVal((), itemsize if "dtype" in kwargs else 8, None)
            if isinstance(value, (list, tuple)):
                return self._array_from_list(value,
                                             itemsize if "dtype" in kwargs else None)
            return UNKNOWN
        if name == "arange":
            nums = [a for a in args]
            if all(is_num(a) for a in nums) and 1 <= len(nums) <= 3:
                try:
                    data = np.arange(*nums)
                except (ValueError, TypeError):
                    return UNKNOWN
                if data.size <= _MAX_CONCRETE_ELEMS:
                    if "dtype" in kwargs:
                        data = data.astype(f"i{itemsize}" if itemsize < 8 else data.dtype)
                    return ArrayVal(data.shape, data.dtype.itemsize, data)
                return ArrayVal((int(data.size),), 8, None)
            return ArrayVal((UNKNOWN,), 8, None)
        if name == "linspace":
            if len(args) >= 3 and all(is_num(a) for a in args[:3]):
                try:
                    data = np.linspace(args[0], args[1], int(args[2]))
                except (ValueError, TypeError):
                    return UNKNOWN
                dtype = kwargs.get("dtype")
                if isinstance(dtype, BuiltinVal) and dtype.name == "int":
                    data = data.astype(np.int64)
                elif isinstance(dtype, DtypeVal):
                    try:
                        data = data.astype(dtype.name)
                    except TypeError:
                        pass
                if data.size <= _MAX_CONCRETE_ELEMS:
                    return ArrayVal(data.shape, data.dtype.itemsize, data)
                return ArrayVal((int(data.size),), 8, None)
            return ArrayVal((UNKNOWN,), 8, None)
        if name in ("concatenate", "vstack", "hstack", "stack"):
            parts = self.concrete_iter(args[0]) if args else None
            if parts is None:
                return ArrayVal((UNKNOWN,), 8, None)
            arrays = [p for p in parts if isinstance(p, ArrayVal)]
            if len(arrays) != len(parts):
                return ArrayVal((UNKNOWN,), 8, None)
            itemsize = max((a.itemsize for a in arrays), default=8)
            if all(a.data is not None for a in arrays):
                try:
                    stackfn = {"concatenate": np.concatenate, "vstack": np.vstack,
                               "hstack": np.hstack, "stack": np.stack}[name]
                    data = stackfn([a.data for a in arrays])
                    return ArrayVal(data.shape, data.dtype.itemsize, data)
                except (ValueError, TypeError):
                    pass
            if name in ("concatenate", "hstack") and all(
                len(a.shape) == 1 for a in arrays
            ):
                total: Any = 0
                for a in arrays:
                    d = a.shape[0]
                    if not is_int(d):
                        total = UNKNOWN
                        break
                    total += int(d)
                return ArrayVal((total,), itemsize, None)
            if name in ("vstack", "stack") and arrays and all(
                a.shape == arrays[0].shape for a in arrays
            ):
                return ArrayVal((len(arrays), *arrays[0].shape), itemsize, None)
            return ArrayVal((UNKNOWN,), itemsize, None)
        if name == "reshape":
            if args and isinstance(args[0], ArrayVal):
                return self.array_method(args[0], "reshape", args[1:], kwargs)
            return UNKNOWN
        if name in ("log2", "log", "log10", "sqrt", "exp", "sin", "cos", "tan",
                    "floor", "ceil", "abs", "absolute", "sign", "round", "rint"):
            if args and is_num(args[0]):
                mathname = {"abs": "fabs", "absolute": "fabs", "round": None,
                            "sign": None, "rint": None}.get(name, name)
                try:
                    if name in ("round", "rint"):
                        return round(args[0])
                    if name == "sign":
                        return (args[0] > 0) - (args[0] < 0)
                    return getattr(math, mathname)(args[0])
                except (ValueError, OverflowError):
                    return UNKNOWN
            if args and isinstance(args[0], ArrayVal):
                a = args[0]
                if a.data is not None:
                    try:
                        data = getattr(np, name)(a.data)
                        return ArrayVal(data.shape, data.dtype.itemsize, data)
                    except Exception:
                        pass
                return a.like()
            return UNKNOWN
        if name in ("maximum", "minimum", "add", "subtract", "multiply", "divide",
                    "mod", "power", "hypot", "arctan2"):
            if len(args) == 2:
                npfn = getattr(np, name)
                return self.binop(lambda x, y: npfn(x, y), args[0], args[1])
            return UNKNOWN
        if name == "where":
            if len(args) == 3:
                shapes = [a.shape for a in args if isinstance(a, ArrayVal)]
                shape: tuple[Any, ...] = ()
                for s in shapes:
                    shape = broadcast_shapes(shape, s)
                itemsize = max((a.itemsize for a in args[1:]
                                if isinstance(a, ArrayVal)), default=8)
                return ArrayVal(shape, itemsize, None)
            return UNKNOWN
        if name in ("sum", "min", "max", "mean", "prod", "cumsum", "dot", "vdot",
                    "count_nonzero", "argmax", "argmin"):
            if args and isinstance(args[0], ArrayVal):
                a = args[0]
                if name == "cumsum":
                    return a.like()
                if name == "dot" and len(args) == 2:
                    return UNKNOWN
                axis = kwargs.get("axis")
                if axis is None:
                    if a.data is not None:
                        try:
                            return self._wrap_np(getattr(np, name)(a.data))
                        except Exception:
                            return UNKNOWN
                    return UNKNOWN
                if is_int(axis) and 0 <= int(axis) < len(a.shape):
                    return ArrayVal(tuple(d for i, d in enumerate(a.shape)
                                          if i != int(axis)), a.itemsize, None)
            return UNKNOWN
        if name in ("isnan", "isfinite", "isinf", "signbit"):
            if args and isinstance(args[0], ArrayVal):
                return ArrayVal(args[0].shape, 1, None, mask=True)
            return UNKNOWN
        if name in ("allclose", "array_equal", "isclose", "may_share_memory"):
            return UNKNOWN
        if name == "eye":
            if args and is_int(args[0]):
                n = int(args[0])
                return ArrayVal((n, n), itemsize, None)
            return UNKNOWN
        if name == "outer":
            if len(args) == 2 and all(isinstance(a, ArrayVal) for a in args):
                da = args[0].shape[0] if args[0].shape else UNKNOWN
                db = args[1].shape[0] if args[1].shape else UNKNOWN
                return ArrayVal((da, db), promote_itemsize(args[0], args[1]), None)
            return UNKNOWN
        if name in ("tril", "triu", "roll", "sort", "flip", "squeeze"):
            if args and isinstance(args[0], ArrayVal):
                return args[0].like()
            return UNKNOWN
        if name in ("bitwise_xor", "bitwise_and", "bitwise_or", "logical_and",
                    "logical_or", "logical_not"):
            arrays = [a for a in args if isinstance(a, ArrayVal)]
            if arrays:
                return arrays[0].like()
            return UNKNOWN
        if name in ("float64", "float32", "int64", "int32", "uint64", "uint32",
                    "int8", "uint8", "complex128", "complex64"):
            if args and is_num(args[0]):
                try:
                    return np.dtype(name).type(args[0]).item()
                except Exception:
                    return UNKNOWN
            return UNKNOWN
        if name == "dtype":
            if args and isinstance(args[0], (str, DtypeVal)):
                dname = args[0].name if isinstance(args[0], DtypeVal) else args[0]
                return DtypeVal(dname)
            return UNKNOWN
        return UNKNOWN

    def _array_from_list(self, value: Any, itemsize: int | None) -> Any:
        # Nested python lists: shape from structure; data when all concrete.
        def shape_of(v: Any) -> tuple[Any, ...] | None:
            if isinstance(v, (list, tuple)):
                if not v:
                    return (0,)
                sub = shape_of(v[0])
                if sub is None:
                    return (len(v),)
                return (len(v), *sub)
            return None

        shape = shape_of(value)
        if shape is None:
            return UNKNOWN

        flat: list[Any] = []

        def flatten(v: Any) -> bool:
            if isinstance(v, (list, tuple)):
                return all(flatten(i) for i in v)
            if is_num(v):
                flat.append(v)
                return True
            if isinstance(v, ArrayVal):
                return False
            flat.append(None)
            return False

        all_concrete = flatten(value)
        nested_arrays = [v for v in value if isinstance(v, ArrayVal)]
        if nested_arrays and len(nested_arrays) == len(value):
            first = nested_arrays[0]
            if all(a.shape == first.shape for a in nested_arrays):
                return ArrayVal((len(value), *first.shape),
                                itemsize or first.itemsize, None)
            return ArrayVal((len(value), UNKNOWN), itemsize or first.itemsize, None)
        if all_concrete:
            try:
                data = np.array(value)
                if data.size <= _MAX_CONCRETE_ELEMS:
                    return ArrayVal(data.shape, data.dtype.itemsize, data)
                return ArrayVal(data.shape, data.dtype.itemsize, None)
            except (ValueError, TypeError):
                pass
        return ArrayVal(shape, itemsize or 8, None)

    # -- protocol op emission -------------------------------------------

    def protocol_call(
        self, handle: HandleVal, method: str, args: list[Any],
        kwargs: dict[str, Any], node: ast.Call,
    ) -> Any:
        kind = handle.kind
        if kind == "image":
            return self._image_call(handle, method, args, kwargs, node)
        if kind == "coarray":
            return self._coarray_call(handle, method, args, kwargs, node)
        if kind == "event":
            return self._event_call(handle, method, args, kwargs, node)
        if kind == "mpi":
            return self._mpiworld_call(handle, method, args, kwargs, node)
        if kind == "comm":
            return self._comm_call(handle, method, args, kwargs, node)
        if kind == "window":
            return self._window_call(handle, method, args, kwargs, node)
        if kind == "gasnet":
            if method in _GASNET_BLOCKING:
                self.emit(kind=f"gasnet.{method}", method=method, node=node,
                          nbytes=0, is_mpi_block=True)
                return None
            return handle  # get()/attach() chains return the world
        if kind == "cluster":
            if method == "shared":
                # Model Cluster.shared(key, factory) as the get-or-create
                # singleton it is: evaluate the factory once per key so
                # the produced value (shape, itemsize) flows through —
                # apps share e.g. their generated input arrays this way.
                key = self._arg(args, kwargs, 0, "key")
                factory = self._arg(args, kwargs, 1, "factory")
                try:
                    hit = key in self._cluster_shared
                except TypeError:
                    return self.call(factory, [], {}, node)
                if not hit:
                    self._cluster_shared[key] = self.call(factory, [], {}, node)
                return self._cluster_shared[key]
            self.escape_args(args, kwargs)
            return UNKNOWN
        if kind == "finish":
            return UNKNOWN
        return UNKNOWN

    def _arg(self, args: list[Any], kwargs: dict[str, Any], idx: int, name: str,
             default: Any = None) -> Any:
        if idx < len(args):
            return args[idx]
        return kwargs.get(name, default)

    def _image_call(
        self, handle: HandleVal, method: str, args: list[Any],
        kwargs: dict[str, Any], node: ast.Call,
    ) -> Any:
        if method == "allocate_coarray":
            shape = self._arg(args, kwargs, 0, "shape", UNKNOWN)
            dims = shape if isinstance(shape, (tuple, list)) else (shape,)
            itemsize = self._itemsize_from(self._arg(args, kwargs, 1, "dtype"), 8)
            return HandleVal(
                "coarray", uid=next(self.uid),
                meta={"shape": tuple(int(d) if is_int(d) else UNKNOWN for d in dims),
                      "itemsize": itemsize,
                      "line": node.lineno},
            )
        if method == "allocate_events":
            nslots = self._arg(args, kwargs, 0, "nslots", 1)
            return HandleVal(
                "event", uid=next(self.uid),
                meta={"nslots": int(nslots) if is_int(nslots) else 1,
                      "line": node.lineno},
            )
        if method == "mpi":
            return self._mpi_world()
        if method == "this_image":
            return self.rank if not args else UNKNOWN
        if method == "num_images":
            return self.nranks if not args else UNKNOWN
        if method in _IMG_COLLECTIVES:
            suffix = _IMG_COLLECTIVES[method]
            buf = self._arg(args, kwargs, 0, "buf" if suffix == "broadcast" else "send")
            nbytes = 0 if suffix == "barrier" else self.nbytes_of(buf)
            self.emit(kind=f"caf.coll.{suffix}", method=method, node=node,
                      nbytes=nbytes, nelems=self.nelems_of(buf) if suffix != "barrier" else 0,
                      is_sync=True)
            return None
        if method in ("team_broadcast_async", "team_reduce_async",
                      "team_allreduce_async", "team_alltoall_async",
                      "team_allgather_async"):
            base = method[len("team_"):-len("_async")]
            buf = args[0] if args else None
            self.emit(kind=f"caf.coll.{base}", method=method, node=node,
                      nbytes=self.nbytes_of(buf), is_sync=False)
            self.escape_args([], {k: v for k, v in kwargs.items()
                              if k in ("data_event", "op_event")})
            return None
        if method == "sync_images":
            self.emit(kind="caf.coll.sync_images", method=method, node=node,
                      nbytes=0, is_sync=True)
            return None
        if method == "cofence":
            self.emit(kind="caf.cofence", method=method, node=node, nbytes=0,
                      is_sync=True)
            return None
        if method == "finish":
            return HandleVal("finish", uid=next(self.uid))
        if method == "copy_async":
            dest_image = self._arg(args, kwargs, 1, "dest_image")
            data = self._arg(args, kwargs, 2, "data")
            self.emit(kind="caf.async_copy", method=method, node=node,
                      peer=dest_image, nbytes=self.nbytes_of(data),
                      nelems=self.nelems_of(data), is_caf_put=True)
            self._post_async_events(kwargs, dest_image, node)
            return None
        if method == "spawn" or method == "spawn_future":
            target = self._arg(args, kwargs, 0, "target")
            self.emit(kind="caf.spawn", method=method, node=node, peer=target)
            self.warn("spawn")
            self.escape_args(args[2:], kwargs)
            return UNKNOWN
        if method == "serve":
            self.emit(kind="caf.serve", method=method, node=node, is_sync=True)
            self.warn("serve")
            return None
        if method in ("compute", "profile"):
            return HandleVal("finish", uid=-1) if method == "profile" else None
        if method == "now":
            return UNKNOWN
        if method == "failed_images":
            return []
        if method in ("team_split", "shrink_team"):
            return UNKNOWN
        return UNKNOWN

    def _post_async_events(self, kwargs: dict[str, Any], target: Any,
                           node: ast.Call) -> None:
        """write_async/copy_async side events: the runtime posts
        ``src_event`` locally and ``dest_event`` at the target image."""
        for key, peer in (("src_event", self.rank), ("dest_event", target)):
            pair = kwargs.get(key)
            if isinstance(pair, (tuple, list)) and len(pair) == 2:
                ev, slot = pair
                if isinstance(ev, HandleVal) and ev.kind == "event":
                    self.emit(
                        kind="caf.event_notify", method=f"async:{key}", node=node,
                        peer=peer, nbytes=0,
                        event=(ev.uid, int(slot) if is_int(slot) else 0),
                    )
                elif pair is not None:
                    self.escape_args([pair], {})

    def _coarray_call(
        self, handle: HandleVal, method: str, args: list[Any],
        kwargs: dict[str, Any], node: ast.Call,
    ) -> Any:
        itemsize = handle.meta.get("itemsize", 8)
        shape = handle.meta.get("shape", (UNKNOWN,))
        if method in ("write", "write_section"):
            target = self._arg(args, kwargs, 0, "target")
            data = args[-1] if len(args) >= 2 else kwargs.get("data")
            self.emit(kind="caf.coarray_write", method=method, node=node,
                      peer=target, nbytes=self.nbytes_of(data, itemsize),
                      nelems=self.nelems_of(data), is_caf_put=True)
            return None
        if method == "read":
            target = self._arg(args, kwargs, 0, "target")
            offset = self._arg(args, kwargs, 1, "offset", 0)
            count = self._arg(args, kwargs, 2, "count")
            if count is None:
                total = 1
                for d in shape:
                    if not is_int(d):
                        total = None
                        break
                    total *= int(d)
                if total is not None and is_int(offset):
                    count = max(total - int(offset), 0)
                else:
                    count = UNKNOWN
            n = int(count) if is_int(count) else UNKNOWN
            self.emit(kind="caf.coarray_read", method=method, node=node,
                      peer=target,
                      nbytes=n * itemsize if is_int(n) else UNKNOWN,
                      nelems=n, is_caf_put=True)
            return ArrayVal((n,), itemsize, None)
        if method == "read_section":
            target = self._arg(args, kwargs, 0, "target")
            key = self._arg(args, kwargs, 1, "key")
            result = self._array_getitem(ArrayVal(shape, itemsize, None),
                                         key if key is not None else UNKNOWN)
            out = result if isinstance(result, ArrayVal) else ArrayVal((UNKNOWN,), itemsize, None)
            self.emit(kind="caf.coarray_read", method=method, node=node,
                      peer=target, nbytes=out.nbytes, nelems=out.size,
                      is_caf_put=True)
            return out
        if method in ("write_async", "read_async"):
            target = self._arg(args, kwargs, 0, "target")
            if method == "write_async":
                data = self._arg(args, kwargs, 1, "data")
                nbytes = self.nbytes_of(data, itemsize)
                nelems = self.nelems_of(data)
            else:
                count = kwargs.get("count", UNKNOWN)
                nelems = int(count) if is_int(count) else UNKNOWN
                nbytes = nelems * itemsize if is_int(nelems) else UNKNOWN
            kind = "caf.async_write" if method == "write_async" else "caf.async_read"
            self.emit(kind=kind, method=method, node=node, peer=target,
                      nbytes=nbytes, nelems=nelems, is_caf_put=True)
            self._post_async_events(kwargs, target, node)
            predicate = kwargs.get("predicate")
            if predicate is not None:
                self.escape_args([predicate], {})
            if method == "read_async":
                return ArrayVal((nelems,), itemsize, None)
            return None
        return UNKNOWN

    def _event_call(
        self, handle: HandleVal, method: str, args: list[Any],
        kwargs: dict[str, Any], node: ast.Call,
    ) -> Any:
        if method == "notify":
            target = self._arg(args, kwargs, 0, "target")
            slot = self._arg(args, kwargs, 1, "slot", 0)
            self.emit(kind="caf.event_notify", method=method, node=node,
                      peer=target, nbytes=0,
                      event=(handle.uid, int(slot) if is_int(slot) else -1))
            return None
        if method == "wait":
            slot = self._arg(args, kwargs, 0, "slot", 0)
            count = self._arg(args, kwargs, 1, "count", 1)
            timeout = kwargs.get("timeout")
            self.emit(kind="caf.event_wait", method=method, node=node,
                      peer=self.rank, nbytes=0,
                      event=(handle.uid, int(slot) if is_int(slot) else -1),
                      count=count, bounded=timeout is not None, is_sync=True)
            return None
        if method == "trywait":
            slot = self._arg(args, kwargs, 0, "slot", 0)
            self.emit(kind="caf.event_trywait", method=method, node=node,
                      peer=self.rank, nbytes=0,
                      event=(handle.uid, int(slot) if is_int(slot) else -1),
                      bounded=True)
            return UNKNOWN
        if method == "count":
            return UNKNOWN
        if method == "on_next_post":
            handle.escaped = True
            self.warn(f"escape:event#{handle.uid}")
            return None
        return UNKNOWN

    def _mpiworld_call(
        self, handle: HandleVal, method: str, args: list[Any],
        kwargs: dict[str, Any], node: ast.Call,
    ) -> Any:
        if method in ("win_allocate", "win_allocate_shared", "win_create_dynamic"):
            memory_model = kwargs.get("memory_model", "unified")
            nelems = self._arg(args, kwargs, 0, "nelems")
            itemsize = self._itemsize_from(kwargs.get("dtype"), 8)
            self.emit(kind="mpi.win.allocate", method=method, node=node,
                      nbytes=0, is_mpi_block=True)
            return HandleVal(
                "window", uid=next(self.uid),
                meta={"memory_model": memory_model if isinstance(memory_model, str)
                      else UNKNOWN,
                      "nelems": int(nelems) if is_int(nelems) else UNKNOWN,
                      "itemsize": itemsize, "line": node.lineno},
            )
        if method in ("get", "init"):
            return handle
        return UNKNOWN

    def _comm_call(
        self, handle: HandleVal, method: str, args: list[Any],
        kwargs: dict[str, Any], node: ast.Call,
    ) -> Any:
        if method in _COMM_COLLECTIVES:
            buf = args[0] if args else None
            nbytes = 0 if method == "barrier" else self.nbytes_of(buf)
            self.emit(kind=f"mpi.coll.{method}", method=method, node=node,
                      nbytes=nbytes,
                      nelems=0 if method == "barrier" else self.nelems_of(buf),
                      is_mpi_block=True, is_sync=False)
            return None
        if method == "send":
            dest = self._arg(args, kwargs, 1, "dest")
            self.emit(kind="mpi.send", method=method, node=node, peer=dest,
                      nbytes=self.nbytes_of(args[0] if args else None),
                      nelems=self.nelems_of(args[0] if args else None),
                      is_mpi_block=True)
            return None
        if method == "recv":
            source = self._arg(args, kwargs, 1, "source")
            self.emit(kind="mpi.recv", method=method, node=node, peer=source,
                      nbytes=self.nbytes_of(args[0] if args else None),
                      is_mpi_block=True)
            return UNKNOWN
        if method == "sendrecv":
            dest = self._arg(args, kwargs, 1, "dest")
            source = self._arg(args, kwargs, 3, "source")
            self.emit(kind="mpi.send", method=method, node=node, peer=dest,
                      nbytes=self.nbytes_of(args[0] if args else None),
                      is_mpi_block=True)
            self.emit(kind="mpi.recv", method=method, node=node, peer=source,
                      nbytes=self.nbytes_of(args[2] if len(args) > 2 else None),
                      is_mpi_block=True)
            return UNKNOWN
        if method == "isend":
            dest = self._arg(args, kwargs, 1, "dest")
            self.emit(kind="mpi.isend", method=method, node=node, peer=dest,
                      nbytes=self.nbytes_of(args[0] if args else None))
            return UNKNOWN
        if method == "irecv":
            source = self._arg(args, kwargs, 1, "source")
            self.emit(kind="mpi.irecv", method=method, node=node, peer=source,
                      nbytes=self.nbytes_of(args[0] if args else None))
            return UNKNOWN
        if method == "probe":
            self.emit(kind="mpi.probe", method=method, node=node, is_mpi_block=True)
            return UNKNOWN
        if method in ("ibarrier", "iallreduce", "ibcast", "ialltoall"):
            self.emit(kind=f"mpi.coll.{method[1:]}", method=method, node=node,
                      nbytes=self.nbytes_of(args[0] if args else None))
            return UNKNOWN
        if method == "iprobe":
            return UNKNOWN
        return UNKNOWN

    def _window_call(
        self, handle: HandleVal, method: str, args: list[Any],
        kwargs: dict[str, Any], node: ast.Call,
    ) -> Any:
        itemsize = handle.meta.get("itemsize", 8)
        if method in _WIN_RMA:
            suffix, target_idx = _WIN_RMA[method]
            target = self._arg(args, kwargs, target_idx, "target")
            data = args[0] if args else None
            self.emit(kind=f"mpi.win.{suffix}" if suffix != "rput" else "mpi.rput",
                      method=method, node=node, peer=target,
                      nbytes=self.nbytes_of(data, itemsize),
                      nelems=self.nelems_of(data))
            if method.startswith("r"):
                return UNKNOWN  # request
            return None
        if method in ("flush", "flush_local"):
            target = self._arg(args, kwargs, 0, "target")
            self.emit(kind=f"mpi.win.{method}", method=method, node=node,
                      peer=target, nbytes=0, is_mpi_block=True)
            return None
        if method in ("flush_all", "flush_local_all"):
            self.emit(kind=f"mpi.win.{method}", method=method, node=node,
                      nbytes=0, is_mpi_block=True)
            return None
        if method in ("lock", "unlock", "lock_all", "unlock_all", "fence", "sync"):
            target = self._arg(args, kwargs, 0, "target") if method in (
                "lock", "unlock") else None
            model = handle.meta.get("memory_model")
            self.emit(kind=f"mpi.win.{method}", method=method, node=node,
                      peer=target, nbytes=0,
                      is_mpi_block=method in ("fence", "lock", "unlock"),
                      note=model if isinstance(model, str) else None)
            return None
        if method in ("attach", "detach", "shared_query", "region"):
            if method == "shared_query":
                return ArrayVal((handle.meta.get("nelems", UNKNOWN),), itemsize, None)
            return UNKNOWN
        return UNKNOWN
