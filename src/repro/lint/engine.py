"""The lint driver: parse, model, run every pass, apply suppressions.

``lint_source``/``lint_file`` return findings for one module;
``lint_paths`` walks files and directories and aggregates a
:class:`~repro.lint.findings.LintReport`.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import os
from collections.abc import Iterable, Sequence

from repro.lint.checks_collective import check_collectives
from repro.lint.checks_epoch import check_epochs
from repro.lint.checks_runtime import check_am_handlers, check_dual_runtime
from repro.lint.checks_sync import (
    check_event_pairing,
    check_finish_usage,
    check_sync_discipline,
)
from repro.lint.findings import Finding, LintReport
from repro.lint.model import build_model
from repro.lint.suppress import is_suppressed, suppressions

#: Passes that run per function.
_FUNCTION_PASSES = (
    check_collectives,
    check_sync_discipline,
    check_dual_runtime,
    check_am_handlers,
    check_epochs,
)

#: Passes that run once per module.
_MODULE_PASSES = (
    check_event_pairing,
    check_finish_usage,
)

#: Stream-tier memo.  Compiling op streams dominates lint time, and CI
#: lints the same tree repeatedly — memoize per module.  Keyed by the
#: *content* hash (plus path, which findings embed), never by path
#: alone: an edited file must recompile, a moved file must not leak the
#: old path into findings.  Values are pre-suppression findings; hits
#: return fresh copies so callers can set ``suppressed`` freely.
_STREAM_MEMO: dict[tuple[str, str], list[Finding]] = {}
_STREAM_MEMO_MAX = 512


def _stream_findings(
    source: str, path: str, model, syntactic: list[Finding]
) -> list[Finding]:
    key = (hashlib.sha256(source.encode()).hexdigest(), path)
    cached = _STREAM_MEMO.get(key)
    if cached is None:
        from repro.lint.stream import check_stream

        try:
            cached = check_stream(model, syntactic)
        except RecursionError:  # pathological nesting: syntactic tier stands
            cached = []
        if len(_STREAM_MEMO) >= _STREAM_MEMO_MAX:
            _STREAM_MEMO.clear()
        _STREAM_MEMO[key] = cached
    return [dataclasses.replace(f) for f in cached]


def lint_source(
    source: str, path: str = "<string>", *, stream: bool = True
) -> list[Finding]:
    """Lint one module's source text. Parse failures yield CAF000.

    ``stream=False`` runs only the per-function/per-module syntactic
    passes, skipping the symbolic op-stream tier (CAF011+).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="CAF000",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                func="",
                message=f"could not parse: {exc.msg}",
            )
        ]

    model = build_model(tree, path)
    findings: list[Finding] = []
    for fn in model.functions:
        for fn_pass in _FUNCTION_PASSES:
            findings.extend(fn_pass(fn, model))
    for mod_pass in _MODULE_PASSES:
        findings.extend(mod_pass(model))
    if stream:
        findings.extend(_stream_findings(source, path, model, findings))

    table = suppressions(source)
    for finding in findings:
        finding.suppressed = is_suppressed(finding.rule, finding.line, table)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(path: str, *, stream: bool = True) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path, stream=stream)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into .py files, skipping caches."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_paths(
    paths: Sequence[str],
    *,
    select: Iterable[str] | None = None,
    stream: bool = True,
) -> LintReport:
    """Lint every .py file under ``paths``; optionally restrict to rules
    in ``select`` (IDs like ``CAF006``)."""
    wanted = {r.upper() for r in select} if select else None
    report = LintReport()
    for path in iter_python_files(paths):
        report.nfiles += 1
        for finding in lint_file(path, stream=stream):
            if wanted is not None and finding.rule not in wanted:
                continue
            report.add(finding)
    return report
