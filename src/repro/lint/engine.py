"""The lint driver: parse, model, run every pass, apply suppressions.

``lint_source``/``lint_file`` return findings for one module;
``lint_paths`` walks files and directories and aggregates a
:class:`~repro.lint.findings.LintReport`.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Sequence

from repro.lint.checks_collective import check_collectives
from repro.lint.checks_epoch import check_epochs
from repro.lint.checks_runtime import check_am_handlers, check_dual_runtime
from repro.lint.checks_sync import (
    check_event_pairing,
    check_finish_usage,
    check_sync_discipline,
)
from repro.lint.findings import Finding, LintReport
from repro.lint.model import build_model
from repro.lint.suppress import is_suppressed, suppressions

#: Passes that run per function.
_FUNCTION_PASSES = (
    check_collectives,
    check_sync_discipline,
    check_dual_runtime,
    check_am_handlers,
    check_epochs,
)

#: Passes that run once per module.
_MODULE_PASSES = (
    check_event_pairing,
    check_finish_usage,
)


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source text. Parse failures yield CAF000."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="CAF000",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                func="",
                message=f"could not parse: {exc.msg}",
            )
        ]

    model = build_model(tree, path)
    findings: list[Finding] = []
    for fn in model.functions:
        for fn_pass in _FUNCTION_PASSES:
            findings.extend(fn_pass(fn, model))
    for mod_pass in _MODULE_PASSES:
        findings.extend(mod_pass(model))

    table = suppressions(source)
    for finding in findings:
        finding.suppressed = is_suppressed(finding.rule, finding.line, table)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into .py files, skipping caches."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_paths(
    paths: Sequence[str],
    *,
    select: Iterable[str] | None = None,
) -> LintReport:
    """Lint every .py file under ``paths``; optionally restrict to rules
    in ``select`` (IDs like ``CAF006``)."""
    wanted = {r.upper() for r in select} if select else None
    report = LintReport()
    for path in iter_python_files(paths):
        report.nfiles += 1
        for finding in lint_file(path):
            if wanted is not None and finding.rule not in wanted:
                continue
            report.add(finding)
    return report
