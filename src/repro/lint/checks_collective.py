"""CAF001 — collective matching under rank-dependent control flow.

MPI-Checker style: a collective executed by a subset of images is a
deadlock (or silent mismatch) at the next matching point. Two sub-rules:

* **Arm matching**: for every ``if`` whose condition is rank-dependent
  (directly or through taint), each collective *name* must occur the
  same number of times in both arms. ``if root: bcast() else: bcast()``
  is the classic *correct* near-miss and stays silent.
* **Early return**: a ``return`` under a branch that literally tests
  ``.rank``/``this_image()`` skips every collective that follows in the
  function — those are flagged at the return site.
"""

from __future__ import annotations

import ast
from collections import Counter

from repro.lint.findings import Finding
from repro.lint.model import (
    COLLECTIVE_METHODS,
    FunctionInfo,
    ModuleModel,
    is_rank_dependent,
    is_rank_literal,
    method_name,
)


def _collective_calls(stmts: list[ast.stmt]) -> list[ast.Call]:
    """Collective method calls in a subtree, skipping nested defs."""
    out: list[ast.Call] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            return
        if isinstance(node, ast.Call):
            name = method_name(node)
            if name in COLLECTIVE_METHODS and isinstance(node.func, ast.Attribute):
                out.append(node)
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in stmts:
        visit(stmt)
    return out


def _has_return(stmts: list[ast.stmt]) -> ast.Return | None:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                break
            if isinstance(node, ast.Return):
                return node
    return None


def check_collectives(fn: FunctionInfo, model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    flagged: set[int] = set()

    def flag(call: ast.Call, message: str, related: list[tuple[str, int, str]] | None = None) -> None:
        if id(call) in flagged:
            return
        flagged.add(id(call))
        findings.append(
            Finding(
                rule="CAF001",
                path=model.path,
                line=call.lineno,
                col=call.col_offset,
                func=fn.qualname,
                message=message,
                related=related or [],
            )
        )

    # -- arm matching ------------------------------------------------------------
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.If):
            continue
        if not is_rank_dependent(node.test, model):
            continue
        body_calls = _collective_calls(node.body)
        else_calls = _collective_calls(node.orelse)
        body_counts = Counter(method_name(c) for c in body_calls)
        else_counts = Counter(method_name(c) for c in else_calls)
        for name in set(body_counts) | set(else_counts):
            nb, ne = body_counts.get(name, 0), else_counts.get(name, 0)
            if nb == ne:
                continue
            richer = body_calls if nb > ne else else_calls
            call = next(c for c in richer if method_name(c) == name)
            arm = "if-arm" if nb > ne else "else-arm"
            other = "other arm" if node.orelse or nb < ne else "missing else"
            flag(
                call,
                f"collective {name}() in the {arm} of a rank-dependent branch "
                f"has no matching call in the {other}: only a subset of "
                f"images reaches it",
                related=[("branch", node.lineno, ast.unparse(node.test))],
            )

    # -- early return ------------------------------------------------------------
    # Walk top-level statements in order; once a literally-rank-guarded
    # one-armed return has been seen, any later collective is unreachable
    # for the returning image subset.
    pending_return: ast.Return | None = None
    pending_test: ast.If | None = None

    def scan(stmts: list[ast.stmt]) -> None:
        nonlocal pending_return, pending_test
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if (
                pending_return is None
                and isinstance(stmt, ast.If)
                and is_rank_literal(stmt.test)
            ):
                ret_body = _has_return(stmt.body)
                ret_else = _has_return(stmt.orelse)
                if (ret_body is None) != (ret_else is None):
                    pending_return = ret_body or ret_else
                    pending_test = stmt
                    continue
            if pending_return is not None and pending_test is not None:
                for call in _collective_calls([stmt]):
                    flag(
                        call,
                        f"collective {method_name(call)}() is skipped by the "
                        f"rank-dependent return at line {pending_return.lineno}: "
                        f"the returning images never match it",
                        related=[
                            ("return", pending_return.lineno, ""),
                            ("branch", pending_test.lineno, ast.unparse(pending_test.test)),
                        ],
                    )

    scan(fn.node.body)
    return findings
