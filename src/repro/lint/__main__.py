import sys

from repro.lint.cli import main

if __name__ == "__main__":
    try:
        rc = main()
    except BrokenPipeError:  # e.g. `... | head`
        sys.stderr.close()
        rc = 0
    sys.exit(rc)
