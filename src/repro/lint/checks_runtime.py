"""Dual-runtime and AM-handler rules: CAF006, CAF007.

CAF006 is the paper's Figure 2 as a static pattern: coarray traffic that
may need target-side CAF progress (Active-Message based writes) is still
outstanding when the program blocks inside the *other* runtime (a raw
MPI barrier/recv/collective). The image whose memory the write targets
can be stuck inside MPI, never running the AM handler — and neither
runtime progresses the other. The rule fires on a blocking raw-MPI call
reachable after a coarray put with no CAF synchronization in between;
any sync/cofence/event-wait breaks the pattern, which is exactly the
discipline the paper's hybrid CGPOP follows.

CAF007 enforces GASNet's handler restrictions: an active-message handler
runs on the AM service path and must not block (no waits, no recv, no
collectives) — it may only do local work and send a short reply.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.model import (
    BLOCKING_METHODS,
    MPI_BLOCKING_METHODS,
    PUT_METHODS,
    SYNC_METHODS,
    FunctionInfo,
    ModuleModel,
    Op,
    method_name,
)


def _is_sync(op: Op) -> bool:
    if op.kind in ("finish_enter", "finish_exit"):
        return True
    return op.kind == "call" and op.method in SYNC_METHODS


def _is_mpi_blocking(op: Op, model: ModuleModel) -> bool:
    if op.kind != "call" or op.method not in MPI_BLOCKING_METHODS:
        return False
    if model.tag(op.recv) == "mpi":
        return True
    return "COMM_WORLD" in op.recv_text or "MpiWorld" in op.recv_text


def _is_gasnet_blocking(op: Op, model: ModuleModel) -> bool:
    if op.kind != "call" or op.method not in BLOCKING_METHODS:
        return False
    return model.tag(op.recv) == "gasnet" or "GasnetWorld" in op.recv_text


def check_dual_runtime(fn: FunctionInfo, model: ModuleModel) -> list[Finding]:
    findings: list[Finding] = []
    ops = model.ops_for(fn)

    # -- Figure 2: unsynced coarray put, then block inside raw MPI --------------
    pending_put: Op | None = None
    for op in ops:
        # Order matters: a raw-MPI barrier is a *blocking entry into the
        # other runtime*, not a CAF synchronization — test it first.
        if pending_put is not None and _is_mpi_blocking(op, model):
            pass  # fall through to the report below
        elif _is_sync(op):
            pending_put = None
            continue
        elif op.kind == "call" and model.tag(op.recv) == "coarray" and op.method in PUT_METHODS:
            if pending_put is None:
                pending_put = op
            continue
        if pending_put is not None and _is_mpi_blocking(op, model):
            guard = " (rank-dependent)" if pending_put.rank_dep else ""
            findings.append(
                Finding(
                    rule="CAF006",
                    path=model.path,
                    line=op.node.lineno,
                    col=op.node.col_offset,
                    func=fn.qualname,
                    message=(
                        f"blocking MPI {op.method}() while the coarray put at "
                        f"line {pending_put.node.lineno}{guard} may still need "
                        f"target-side CAF progress: with AM-based writes every "
                        f"image blocks in a runtime that does not progress the "
                        f"other (paper Fig. 2)"
                    ),
                    related=[("put", pending_put.node.lineno, _snippet(pending_put.node))],
                )
            )
            pending_put = None  # one report per put

    # -- both runtimes constructed and blocked on in one function --------------
    gasnet_block: Op | None = None
    mpi_block: Op | None = None
    for op in ops:
        if gasnet_block is None and _is_gasnet_blocking(op, model):
            gasnet_block = op
        if mpi_block is None and _is_mpi_blocking(op, model):
            mpi_block = op
    if gasnet_block is not None and mpi_block is not None:
        later, earlier = (
            (mpi_block, gasnet_block)
            if mpi_block.node.lineno >= gasnet_block.node.lineno
            else (gasnet_block, mpi_block)
        )
        findings.append(
            Finding(
                rule="CAF006",
                path=model.path,
                line=later.node.lineno,
                col=later.node.col_offset,
                func=fn.qualname,
                message=(
                    f"this function blocks in both runtimes ({earlier.method}() "
                    f"at line {earlier.node.lineno}, then {later.method}()): "
                    f"neither GASNet nor MPI progresses the other while blocked "
                    f"(paper Fig. 2)"
                ),
                related=[("first", earlier.node.lineno, _snippet(earlier.node))],
            )
        )

    return findings


def check_am_handlers(fn: FunctionInfo, model: ModuleModel) -> list[Finding]:
    if fn.node.name not in model.am_handlers:
        return []
    findings: list[Finding] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and method_name(node) in BLOCKING_METHODS
        ):
            findings.append(
                Finding(
                    rule="CAF007",
                    path=model.path,
                    line=node.lineno,
                    col=node.col_offset,
                    func=fn.qualname,
                    message=(
                        f"{method_name(node)}() can block, but "
                        f"'{fn.node.name}' is registered as a GASNet "
                        f"active-message handler: handlers must only do local "
                        f"work and short replies"
                    ),
                )
            )
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in fn.node.body:
        visit(stmt)
    return findings


def _snippet(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return ""
    return text if len(text) <= limit else text[: limit - 3] + "..."
