"""SARIF 2.1.0 serialization of a lint report.

One ``run`` with the full rule registry in ``tool.driver.rules`` and one
``result`` per finding, so ``python -m repro.lint --format sarif`` can
feed GitHub code scanning (or any SARIF viewer) directly.  Suppressed
findings are emitted with a SARIF ``suppressions`` entry rather than
dropped — the viewer decides whether to show them.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.lint.findings import Finding, LintReport
from repro.lint.rules import RULES, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: The deadlock rules are ``error``; the performance pack is ``warning``.
_WARNING_RULES = {"CAF011", "CAF013", "CAF014"}


def _rule_descriptor(rule: Rule) -> dict[str, Any]:
    desc: dict[str, Any] = {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "help": {"text": f"fix: {rule.fix}"},
        "defaultConfiguration": {
            "level": "warning" if rule.id in _WARNING_RULES else "error"
        },
    }
    if rule.paper:
        desc["properties"] = {"paper": rule.paper}
    return desc


def _location(path: str, line: int, col: int, text: str = "") -> dict[str, Any]:
    physical: dict[str, Any] = {
        "artifactLocation": {"uri": pathlib.PurePath(path).as_posix()},
        "region": {"startLine": max(line, 1), "startColumn": max(col, 0) + 1},
    }
    loc: dict[str, Any] = {"physicalLocation": physical}
    if text:
        loc["message"] = {"text": text}
    return loc


def _result(finding: Finding) -> dict[str, Any]:
    rule = RULES[finding.rule]
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "warning" if finding.rule in _WARNING_RULES else "error",
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    if finding.related:
        result["relatedLocations"] = [
            _location(finding.path, line, 0, f"{label}: {text}" if text else label)
            for label, line, text in finding.related
        ]
    if finding.func:
        result["properties"] = {"function": finding.func, "paper": rule.paper}
    if finding.suppressed:
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": "# repro: lint-ignore",
            }
        ]
    return result


def to_sarif(report: LintReport, *, show_suppressed: bool = True) -> dict[str, Any]:
    """Build the SARIF log object for ``report``."""
    shown = report.findings if show_suppressed else report.active
    shown = sorted(shown, key=lambda f: (f.path, f.line, f.rule))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": (
                            "https://doi.org/10.1145/2555243.2555270"
                        ),
                        "rules": [
                            _rule_descriptor(r) for r in RULES.values()
                        ],
                    }
                },
                "results": [_result(f) for f in shown],
            }
        ],
    }


def to_sarif_text(report: LintReport, *, show_suppressed: bool = True) -> str:
    return json.dumps(
        to_sarif(report, show_suppressed=show_suppressed), indent=2
    )
