"""The rule registry: every check ``repro.lint`` can emit, with stable IDs.

IDs are append-only — a rule is never renumbered or reused, so
``# repro: lint-ignore[CAF006]`` suppressions stay valid across versions.
``CAF000`` is reserved for files the linter cannot parse at all.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One static check.

    ``fix`` is the one-line remediation hint printed under a finding;
    ``paper`` ties the rule to the figure/section of the source paper
    whose hazard it encodes.
    """

    id: str
    name: str
    summary: str
    fix: str
    paper: str = ""


_ALL = [
    Rule(
        "CAF000",
        "syntax-error",
        "file could not be parsed; no protocol checks ran",
        "fix the syntax error",
    ),
    Rule(
        "CAF001",
        "unmatched-collective",
        "collective called under a rank-dependent branch with no matching "
        "call on the other arm (or skipped by a rank-dependent early return)",
        "call the collective on every image, or hoist it out of the branch",
        "§2.1 team collectives",
    ),
    Rule(
        "CAF002",
        "unsynced-put-read",
        "coarray put followed by a read of the same coarray's local memory "
        "with no intervening synchronization (under SPMD symmetry the "
        "target's local read races the origin's put)",
        "separate the put and the local access with sync_all/cofence/an event wait",
        "Fig. 3/4 sync discipline",
    ),
    Rule(
        "CAF003",
        "async-never-completed",
        "asynchronous operation with no completion event and no reachable "
        "cofence/sync before the end of the function",
        "pass src_event/dest_event, or call cofence()/sync_all() before returning",
        "§3.3/§3.5 implicit synchronization",
    ),
    Rule(
        "CAF004",
        "notify-without-wait",
        "event_notify on an event that no reachable event_wait ever consumes",
        "add the matching wait, or drop the notify",
        "§2.1 events",
    ),
    Rule(
        "CAF005",
        "wait-without-notify",
        "unbounded event_wait on an event that nothing ever notifies",
        "add the matching notify, or bound the wait with timeout=",
        "§2.1 events",
    ),
    Rule(
        "CAF006",
        "dual-runtime-deadlock",
        "blocking call into one runtime while coarray traffic from the other "
        "may still need target-side progress: if writes are Active-Message "
        "based, every image can end up blocked in a runtime that does not "
        "progress the other (the paper's Figure 2)",
        "complete CAF traffic (sync_all/cofence/event wait) before blocking in MPI",
        "Fig. 2 interoperability deadlock",
    ),
    Rule(
        "CAF007",
        "blocking-in-am-handler",
        "blocking call inside a GASNet active-message handler; handlers run "
        "on the AM service path and may only do local work and short replies",
        "move the blocking call out of the handler (queue work for the image)",
        "§3.2 AM-handler restrictions",
    ),
    Rule(
        "CAF008",
        "finish-not-context-managed",
        "finish() called without entering the block: the collective "
        "termination-detection never runs",
        "use `with img.finish():` around the spawning region",
        "§2.1 finish",
    ),
    Rule(
        "CAF009",
        "rma-outside-epoch",
        "window RMA with no passive-target lock/lock_all (or fence) epoch "
        "open at the call",
        "open an epoch first: win.lock_all() / win.lock(target) / win.fence()",
        "§3.1 MPI-3 RMA epochs",
    ),
    Rule(
        "CAF010",
        "epoch-never-closed",
        "lock/lock_all epoch still open when the function ends; remote "
        "completion of the epoch's operations is never forced",
        "close the epoch with unlock/unlock_all before returning",
        "§3.1 MPI-3 RMA epochs",
    ),
    Rule(
        "CAF011",
        "flush-all-in-hot-loop",
        "WIN_FLUSH_ALL inside a loop: under MPICH-style RMA every call "
        "walks all P ranks in the window group, so the loop body pays "
        "O(P) per iteration and the loop total scales as O(trip x P)",
        "flush only the targets the iteration touched (flush(rank)), or "
        "hoist one flush_all past the loop",
        "Fig. 4 FLUSH_ALL scaling cliff",
    ),
    Rule(
        "CAF012",
        "symbolic-stream-deadlock",
        "cross-rank matching over the compiled per-rank op streams found "
        "a hang: a pending CAF put held across a blocking call into a "
        "foreign runtime (interprocedural/loop-carried Fig. 2), an event "
        "wait that consumes more notifies than any rank ever delivers, "
        "or a blocking recv with no matching send",
        "synchronize CAF traffic before blocking in MPI, and balance "
        "notify/wait (send/recv) counts across ranks and loop iterations",
        "Fig. 2 dual-runtime deadlock",
    ),
    Rule(
        "CAF013",
        "per-op-window-sync",
        "WIN_SYNC inside a loop on a window allocated with the separate "
        "memory model: each call pays a full public/private copy "
        "reconciliation per iteration",
        "batch accesses per epoch and sync once after the loop, or "
        "allocate the window with the unified memory model",
        "§3.1 separate memory model",
    ),
    Rule(
        "CAF014",
        "eager-loop-injection",
        "tiny eager-size message posted once per iteration of a loop "
        "whose trip count grows with the image count P: the rank injects "
        "O(P) latency-bound messages where one batched transfer or a "
        "single collective would do",
        "aggregate the per-peer payloads and send one message per peer, "
        "or use a collective (alltoall/allgather)",
        "§4.2 eager protocol / message rate",
    ),
]

RULES: dict[str, Rule] = {r.id: r for r in _ALL}

#: Rules that constitute the protocol checker proper (CAF000 is plumbing).
PROTOCOL_RULES: tuple[str, ...] = tuple(r.id for r in _ALL if r.id != "CAF000")
