"""MPI-3 subset implemented from scratch on the simulated cluster.

The pieces of MPI-3 the paper's CAF-MPI runtime needs (§2.2, §3):

* two-sided point-to-point with tag matching, wildcards, eager and
  rendezvous protocols (:mod:`repro.mpi.p2p`),
* collectives with tuned algorithms — the paper credits CAF-MPI's FFT win
  to ``MPI_ALLTOALL`` (:mod:`repro.mpi.collectives`),
* RMA windows with ``MPI_WIN_ALLOCATE``, passive-target synchronization
  (``LOCK_ALL`` / ``FLUSH`` / ``FLUSH_ALL``), request-generating operations
  (``RPUT`` / ``RGET``) and one-sided atomics (:mod:`repro.mpi.window`).

Behavioural fidelity knobs (on :class:`repro.sim.MachineSpec`):

* ``mpi_flush_all_per_target`` — MPICH-derivative ``MPI_WIN_FLUSH_ALL``
  walks every rank in the window's group, so its cost is linear in the
  number of processes (the paper's Figure 4 analysis).
* ``mpi_rma_over_sendrecv`` — Cray MPI implements RMA over send/recv
  internally (the paper's Figure 5 analysis).

Entry point: ``world = MpiWorld.get(ctx.cluster); mpi = world.init(ctx)``.
"""

from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    BAND,
    BOR,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MIN,
    NO_OP,
    PROD,
    REPLACE,
    SUM,
)
from repro.mpi.request import Request, test_all, wait_all, wait_any
from repro.mpi.status import Status
from repro.mpi.world import MpiRank, MpiWorld

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BAND",
    "BOR",
    "BXOR",
    "LAND",
    "LOR",
    "LXOR",
    "MAX",
    "MIN",
    "NO_OP",
    "PROD",
    "REPLACE",
    "SUM",
    "MpiRank",
    "MpiWorld",
    "Request",
    "Status",
    "test_all",
    "wait_all",
    "wait_any",
]
