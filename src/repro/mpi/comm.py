"""Communicators: groups, context ids, dup/split, and the per-rank facade.

A :class:`_CommState` is the shared (library-side) state of one
communicator: its group, its two matching contexts (user + collective),
and coordination boards for ``split``. A :class:`Comm` is one rank's view
of that state — the object application code holds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.mpi import collectives as coll
from repro.mpi import p2p
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.p2p import Matching
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.util.errors import MpiError, MpiProcFailedError, MpiRevokedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpi.world import MpiRank, MpiWorld


class _CommState:
    """Shared library state of one communicator."""

    def __init__(self, world: "MpiWorld", group: tuple[int, ...], context_id: int):
        self.world = world
        self.group = group  # comm rank -> world rank
        self.context_id = context_id
        n = len(group)
        self.user = Matching(n, f"comm{context_id}.user")
        self.coll = Matching(n, f"comm{context_id}.coll")
        # Nonblocking collectives run on progress agents in their own
        # context, so they can overlap blocking traffic.
        self.nbc = Matching(n, f"comm{context_id}.nbc")
        # Per-rank collective sequence numbers (become internal tags).
        self.coll_seq = [0] * n
        self.nbc_seq = [0] * n
        # Split coordination: split_seq -> {"args": {rank: (color,key)}, "result": ...}
        self.split_boards: dict[int, dict[str, Any]] = {}
        self.split_count = [0] * n
        #: ULFM revocation flag: set by :meth:`Comm.revoke`, checked on
        #: every p2p entry so the error propagates comm-wide.
        self.revoked = False
        # ULFM eager failure: when a group member dies, pending receives
        # from it (and rendezvous sends parked at it) complete in error
        # instead of hanging forever.
        world.cluster.failure_listeners.append(self._on_rank_failure)

    def _on_rank_failure(self, world_rank: int) -> None:
        """Scheduler-context: a world rank died; fail pending ops on it."""
        if world_rank not in self.group:
            return
        c = self.group.index(world_rank)
        for matching in (self.user, self.coll, self.nbc):
            for dst in range(len(self.group)):
                if dst == c:
                    continue
                still = []
                for posted in matching.posted[dst]:
                    if posted.src == c:
                        posted.request._fail(
                            MpiProcFailedError(
                                world_rank,
                                f"pending receive from failed peer {c} "
                                f"(world rank {world_rank})",
                            )
                        )
                    else:
                        still.append(posted)
                matching.posted[dst][:] = still
            # Rendezvous RTS envelopes parked at the dead rank: the payload
            # will never move, so the senders' requests fail now.
            for env in matching.unexpected[c]:
                if env.rendezvous is not None:
                    env.rendezvous.send_request._fail(
                        MpiProcFailedError(
                            world_rank,
                            f"rendezvous send to failed peer {c} "
                            f"(world rank {world_rank})",
                        )
                    )
            matching.unexpected[c].clear()

    def _revoke(self) -> None:
        """Scheduler-safe revocation: fail every pending p2p operation."""
        if self.revoked:
            return
        self.revoked = True
        exc = MpiRevokedError(self.context_id)
        for matching in (self.user, self.coll, self.nbc):
            for dst in range(len(self.group)):
                pending, matching.posted[dst][:] = matching.posted[dst][:], []
                for posted in pending:
                    posted.request._fail(exc)
                for env in matching.unexpected[dst]:
                    if env.rendezvous is not None:
                        env.rendezvous.send_request._fail(exc)
                # Wake blocked probes so they re-check the flag.
                matching.arrivals[dst].add()


class Comm:
    """One rank's handle on a communicator.

    ``space`` selects which internal matching context collectives use:
    "coll" for the blocking entry points, "nbc" for the agent-side views
    that execute nonblocking collectives.
    """

    def __init__(self, state: _CommState, mpirank: "MpiRank", rank: int, space: str = "coll"):
        self.state = state
        self.mpirank = mpirank
        self.ctx = mpirank.ctx
        self.rank = rank
        self.size = len(state.group)
        self._space = space

    # -- identity ---------------------------------------------------------

    def world_rank(self, comm_rank: int) -> int:
        return self.state.group[comm_rank]

    def check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise MpiError(f"peer rank {peer} out of range [0, {self.size})")
        self.check_alive(peer)

    # -- ULFM-style failure handling ---------------------------------------

    def check_alive(self, peer: int) -> None:
        """Raise :class:`MpiProcFailedError` if ``peer`` has crashed.

        Modeled on ULFM's MPI_ERR_PROC_FAILED: operations that name a dead
        process fail eagerly instead of hanging.
        """
        w = self.state.group[peer]
        if w in self.ctx.cluster.failed_ranks:
            raise MpiProcFailedError(
                w, f"peer {peer} (world rank {w}) has failed"
            )

    def failed_ranks(self) -> list[int]:
        """Comm ranks of group members known to have crashed
        (ULFM's MPIX_Comm_failure_ack/get_acked query)."""
        failed = self.ctx.cluster.failed_ranks
        return [r for r, w in enumerate(self.state.group) if w in failed]

    def check_revoked(self) -> None:
        """Raise :class:`MpiRevokedError` if this communicator is revoked."""
        if self.state.revoked:
            raise MpiRevokedError(self.state.context_id)

    def revoke(self) -> None:
        """ULFM's MPIX_COMM_REVOKE: poison the communicator everywhere.

        Any surviving rank that has detected a failure calls this; every
        pending receive (on any rank) completes with
        :class:`MpiRevokedError` and every future operation raises it, so
        ranks blocked on *live* peers — who themselves stopped because of
        the dead one — are interrupted too. Recovery then proceeds through
        :meth:`shrink`.
        """
        self.state._revoke()

    def shrink(self) -> "Comm":
        """ULFM's MPIX_COMM_SHRINK: a new communicator over the survivors.

        Every surviving rank must call this. Dead ranks cannot participate
        in a collective, so agreement runs through the cluster's shared
        board (the simulation-level stand-in for ULFM's fault-tolerant
        agreement protocol) rather than a barrier.
        """
        if self.rank in self.failed_ranks():  # pragma: no cover - defensive
            raise MpiError("shrink() called by a failed rank")
        failed = self.ctx.cluster.failed_ranks
        survivors = tuple(w for w in self.state.group if w not in failed)
        key = ("mpi-shrink", self.state.context_id, survivors)

        def build() -> _CommState:
            return _CommState(
                self.state.world, survivors, self.state.world.next_context_id()
            )

        new_state = self.ctx.cluster.shared(key, build)
        my_world = self.state.group[self.rank]
        return Comm(new_state, self.mpirank, survivors.index(my_world))

    # -- point-to-point (user context) -------------------------------------

    def isend(self, buf, dest: int, tag: int = 0) -> Request:
        return p2p.isend(self, self.state.user, buf, dest, tag)

    def irecv(self, buf, source: int, tag: int = ANY_TAG) -> Request:
        return p2p.irecv(self, self.state.user, buf, source, tag)

    def send(self, buf, dest: int, tag: int = 0) -> None:
        self.isend(buf, dest, tag).wait()

    def recv(self, buf, source: int, tag: int = ANY_TAG) -> Status:
        return self.irecv(buf, source, tag).wait()

    def sendrecv(
        self, sendbuf, dest: int, recvbuf, source: int, sendtag: int = 0, recvtag: int = ANY_TAG
    ) -> Status:
        rreq = self.irecv(recvbuf, source, recvtag)
        sreq = self.isend(sendbuf, dest, sendtag)
        sreq.wait()
        return rreq.wait()

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        env = p2p.probe(self, self.state.user, source, tag, blocking=True)
        assert env is not None
        return Status(source=env.src, tag=env.tag, count=env.nbytes)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> tuple[bool, Status | None]:
        env = p2p.probe(self, self.state.user, source, tag, blocking=False)
        if env is None:
            return False, None
        return True, Status(source=env.src, tag=env.tag, count=env.nbytes)

    # -- internal p2p on the collective context ----------------------------

    @property
    def _coll_matching(self) -> Matching:
        return self.state.nbc if self._space == "nbc" else self.state.coll

    @property
    def _coll_seq_list(self) -> list[int]:
        return self.state.nbc_seq if self._space == "nbc" else self.state.coll_seq

    def _coll_isend(self, buf, dest: int, tag: int) -> Request:
        return p2p.isend(self, self._coll_matching, buf, dest, tag)

    def _coll_irecv(self, buf, source: int, tag: int) -> Request:
        return p2p.irecv(self, self._coll_matching, buf, source, tag)

    def _coll_send(self, buf, dest: int, tag: int) -> None:
        self._coll_isend(buf, dest, tag).wait()

    def _coll_recv(self, buf, source: int, tag: int) -> Status:
        return self._coll_irecv(buf, source, tag).wait()

    def _coll_sendrecv(self, sendbuf, dest: int, recvbuf, source: int, tag: int) -> None:
        rreq = self._coll_irecv(recvbuf, source, tag)
        sreq = self._coll_isend(sendbuf, dest, tag)
        sreq.wait()
        rreq.wait()

    def _next_coll_tag(self) -> int:
        seq_list = self._coll_seq_list
        tag = seq_list[self.rank]
        seq_list[self.rank] += 1
        return tag

    # -- collectives --------------------------------------------------------

    def _obs_coll(self, kind: str, nbytes: int, t0: float) -> None:
        """Charge a finished blocking collective to the metrics registry."""
        obs = self.ctx.metrics
        if obs is None:  # pragma: no cover - callers guard already
            return
        obs.record(
            self.state.group[self.rank],
            "mpi.coll." + kind,
            nbytes,
            self.ctx.engine.now - t0,
        )

    def barrier(self) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        coll.barrier(self)
        if obs is not None:
            self._obs_coll("barrier", 0, t0)

    def bcast(self, buf, root: int = 0) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        coll.bcast(self, buf, root)
        if obs is not None:
            self._obs_coll("bcast", np.asarray(buf).nbytes, t0)

    def reduce(self, sendbuf, recvbuf, op=None, root: int = 0) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        coll.reduce(self, sendbuf, recvbuf, op, root)
        if obs is not None:
            self._obs_coll("reduce", np.asarray(sendbuf).nbytes, t0)

    def allreduce(self, sendbuf, recvbuf, op=None) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        coll.allreduce(self, sendbuf, recvbuf, op)
        if obs is not None:
            self._obs_coll("allreduce", np.asarray(sendbuf).nbytes, t0)

    def alltoall(self, sendbuf, recvbuf) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        coll.alltoall(self, sendbuf, recvbuf)
        if obs is not None:
            self._obs_coll("alltoall", np.asarray(sendbuf).nbytes, t0)

    def alltoallv(self, sendchunks, recvchunks) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        coll.alltoallv(self, sendchunks, recvchunks)
        if obs is not None:
            self._obs_coll(
                "alltoallv",
                sum(np.asarray(c).nbytes for c in sendchunks),
                t0,
            )

    def allgather(self, sendbuf, recvbuf) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        coll.allgather(self, sendbuf, recvbuf)
        if obs is not None:
            self._obs_coll("allgather", np.asarray(sendbuf).nbytes, t0)

    def gather(self, sendbuf, recvbuf, root: int = 0) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        coll.gather(self, sendbuf, recvbuf, root)
        if obs is not None:
            self._obs_coll("gather", np.asarray(sendbuf).nbytes, t0)

    def scatter(self, sendbuf, recvbuf, root: int = 0) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        coll.scatter(self, sendbuf, recvbuf, root)
        if obs is not None:
            self._obs_coll("scatter", np.asarray(recvbuf).nbytes, t0)

    def reduce_scatter_block(self, sendbuf, recvbuf, op=None) -> None:
        obs = self.ctx.metrics
        t0 = self.ctx.engine.now if obs is not None else 0.0
        coll.reduce_scatter_block(self, sendbuf, recvbuf, op)
        if obs is not None:
            self._obs_coll("reduce_scatter", np.asarray(sendbuf).nbytes, t0)

    # -- nonblocking collectives (MPI-3) -------------------------------------

    def _submit_nbc(self, kind: str, work) -> Request:
        """Queue a collective on this comm's progress agent (FIFO per comm,
        so every rank's agent executes the same sequence — the MPI NBC
        ordering requirement)."""
        agent, view = self.mpirank._nbc_agent(self)
        req = Request(f"i{kind}(ctx={self.state.context_id})", self.ctx.proc)
        done = agent.submit(lambda agent_ctx: work(view))
        done.subscribe(lambda: req._complete())
        return req

    def ibarrier(self) -> Request:
        """MPI_IBARRIER: request completes when all ranks have entered."""
        return self._submit_nbc("barrier", lambda view: coll.barrier(view))

    def ibcast(self, buf, root: int = 0) -> Request:
        return self._submit_nbc("bcast", lambda view: coll.bcast(view, buf, root))

    def ireduce(self, sendbuf, recvbuf, op=None, root: int = 0) -> Request:
        return self._submit_nbc(
            "reduce", lambda view: coll.reduce(view, sendbuf, recvbuf, op, root)
        )

    def iallreduce(self, sendbuf, recvbuf, op=None) -> Request:
        return self._submit_nbc(
            "allreduce", lambda view: coll.allreduce(view, sendbuf, recvbuf, op)
        )

    def ialltoall(self, sendbuf, recvbuf) -> Request:
        return self._submit_nbc(
            "alltoall", lambda view: coll.alltoall(view, sendbuf, recvbuf)
        )

    def iallgather(self, sendbuf, recvbuf) -> Request:
        return self._submit_nbc(
            "allgather", lambda view: coll.allgather(view, sendbuf, recvbuf)
        )

    # -- construction ---------------------------------------------------------

    def split(self, color: int, key: int | None = None) -> "Comm | None":
        """MPI_COMM_SPLIT. ``color < 0`` (MPI_UNDEFINED) yields None."""
        if key is None:
            key = self.rank
        state = self.state
        seq = state.split_count[self.rank]
        state.split_count[self.rank] += 1
        board = state.split_boards.setdefault(seq, {"args": {}, "result": None})
        board["args"][self.rank] = (color, key)
        # Agreement protocol: everyone contributes, then a barrier guarantees
        # all contributions are visible; rank 0 computes the partition once.
        self.barrier()
        if board["result"] is None:
            groups: dict[int, list[tuple[int, int]]] = {}
            for r, (c, k) in board["args"].items():
                if c >= 0:
                    groups.setdefault(c, []).append((k, r))
            result: dict[int, tuple[_CommState, int]] = {}
            for c in sorted(groups):
                members = [r for _k, r in sorted(groups[c])]
                new_state = _CommState(
                    state.world,
                    tuple(state.group[r] for r in members),
                    state.world.next_context_id(),
                )
                for new_rank, r in enumerate(members):
                    result[r] = (new_state, new_rank)
            board["result"] = result
        # Second barrier: nobody proceeds before the partition exists.
        self.barrier()
        entry = board["result"].get(self.rank)
        if entry is None:
            return None
        new_state, new_rank = entry
        return Comm(new_state, self.mpirank, new_rank)

    def dup(self) -> "Comm":
        """MPI_COMM_DUP: same group, fresh context."""
        new = self.split(0, self.rank)
        assert new is not None
        return new

    # -- convenience ------------------------------------------------------------

    def new_like(self, template: np.ndarray) -> np.ndarray:
        return np.empty_like(template)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comm ctx={self.state.context_id} rank={self.rank}/{self.size}>"
