"""MPI_Status: source/tag/count of a completed receive."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Status:
    source: int = -1
    tag: int = -1
    count: int = 0  # bytes received

    def get_count(self, itemsize: int = 1) -> int:
        """Number of elements received, given the element size in bytes."""
        return self.count // itemsize
