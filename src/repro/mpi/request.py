"""MPI request objects: nonblocking-operation completion handles.

A :class:`Request` wraps a :class:`~repro.sim.sync.SimEvent`. Waiting on a
request blocks the calling image until the simulated operation completes;
because the library progresses communication asynchronously (callbacks on
the event heap), no polling loop is needed at the MPI level.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.sim.engine import Proc
from repro.sim.sync import SimEvent
from repro.mpi.status import Status


class Request:
    """Completion handle for a nonblocking MPI operation."""

    def __init__(self, kind: str, proc: Proc):
        self.kind = kind
        self._proc = proc
        self._event = SimEvent(f"req:{kind}")
        self.status = Status()
        #: Set by :meth:`_fail`; re-raised from :meth:`wait` — the ULFM
        #: model where a pending operation involving a failed process
        #: completes in error instead of hanging.
        self.error: Exception | None = None

    # -- completion (library side) ---------------------------------------

    def _complete(self, value=None) -> None:
        self._event.fire(value)

    def _fail(self, exc: Exception) -> None:
        """Complete the request in error (idempotent, scheduler context)."""
        if self._event.is_set:
            return
        self.error = exc
        self._event.fire(None)

    @property
    def completed(self) -> bool:
        return self._event.is_set

    # -- user side --------------------------------------------------------

    def wait(self) -> Status:
        """Block until the operation completes; returns its status."""
        self._event.wait(self._proc)
        if self.error is not None:
            raise self.error
        return self.status

    def test(self) -> tuple[bool, Status | None]:
        """Nonblocking completion check."""
        if self._event.is_set:
            if self.error is not None:
                raise self.error
            return True, self.status
        return False, None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Request {self.kind} {'done' if self.completed else 'pending'}>"


def wait_all(requests: Iterable[Request]) -> list[Status]:
    """MPI_WAITALL: block until every request completes."""
    return [req.wait() for req in requests]


def wait_any(requests: list[Request]) -> tuple[int, Status]:
    """MPI_WAITANY: block until at least one request completes.

    Returns the index of a completed request (earliest-completing wins on
    ties by list order, matching a deterministic MPI implementation).
    """
    if not requests:
        raise ValueError("wait_any on empty request list")
    proc = requests[0]._proc
    while True:
        for i, req in enumerate(requests):
            if req.completed:
                return i, req.status
        # Park on a fresh merge event that fires when any request completes.
        any_ev = SimEvent("wait_any")
        for req in requests:
            req._event.subscribe(any_ev.fire)
        any_ev.wait(proc)


def test_all(requests: Iterable[Request]) -> bool:
    """MPI_TESTALL: True iff every request has completed."""
    return all(req.completed for req in requests)
