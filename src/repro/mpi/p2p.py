"""Two-sided point-to-point: tag matching, eager and rendezvous protocols.

One :class:`Matching` instance is one MPI *context*: a communicator owns
two (user traffic and collective traffic) so library-internal messages can
never match user wildcards, exactly as real MPI separates them with
context ids.

Protocols
---------
* **Eager** (payload <= ``spec.mpi_eager_threshold``): the sender copies the
  payload into an internal buffer (charged as memcpy time), injects it, and
  the send completes locally at once. On delivery the target either fills a
  posted receive (completing it after the match overhead) or parks the
  message in the unexpected queue.
* **Rendezvous** (larger payloads): the sender injects a ready-to-send
  (RTS) envelope; when the target matches it, a clear-to-send (CTS) flows
  back and the payload moves directly; both requests complete when the
  payload lands.

The simulated MPI library has asynchronous progress for two-sided traffic
(matching runs in scheduler callbacks, like a hardware-assisted or
progress-thread implementation); the *lack* of progress the paper's
Figure 2 warns about lives one level up, in CAF's Active-Message layer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.request import Request
from repro.sim import irhook as _irhook
from repro.sim.sync import Counter
from repro.util.errors import MpiError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpi.comm import Comm

_ENVELOPE_BYTES = 48  # modeled on-wire size of a match header / RTS / CTS

_seq = itertools.count()


def _as_bytes_view(buf) -> np.ndarray:
    """View any contiguous numpy buffer as flat bytes (zero-copy)."""
    arr = np.asarray(buf)
    if arr.size and not arr.flags["C_CONTIGUOUS"]:
        raise MpiError("message buffers must be C-contiguous")
    return arr.reshape(-1).view(np.uint8)


@dataclass
class _Envelope:
    """An arrived (or in-flight) message as seen by the matcher."""

    src: int  # comm rank of the sender
    tag: int
    nbytes: int
    data: np.ndarray | None  # eager payload (byte snapshot); None for RTS
    rendezvous: "_Rendezvous | None"
    seq: int = field(default_factory=lambda: next(_seq))
    #: Sender's vector-clock snapshot (sanitized runs only): a completed
    #: receive is a happens-before edge from send to receiver.
    clock: tuple | None = None


@dataclass
class _Rendezvous:
    """Sender-side state referenced by an RTS envelope."""

    payload: np.ndarray  # flat byte view of the send buffer (reuse is
    # forbidden until the send request completes, so no snapshot is taken)
    send_request: Request
    src_world: int


def _filters_match(src_filter: int, tag_filter: int, env: _Envelope) -> bool:
    return (src_filter in (ANY_SOURCE, env.src)) and (
        tag_filter in (ANY_TAG, env.tag)
    )


@dataclass
class _PostedRecv:
    src: int  # comm rank or ANY_SOURCE
    tag: int  # or ANY_TAG
    buf: np.ndarray  # flat byte view of the user buffer
    request: Request
    seq: int = field(default_factory=lambda: next(_seq))
    #: World rank of the receiver (recorded at post time — completion may
    #: run under the *sender's* comm object, whose rank is not ours).
    dst_world: int = -1

    def matches(self, env: _Envelope) -> bool:
        return _filters_match(self.src, self.tag, env)


class Matching:
    """Posted-receive and unexpected-message queues for one context."""

    def __init__(self, nranks: int, label: str):
        self.label = label
        self.posted: list[list[_PostedRecv]] = [[] for _ in range(nranks)]
        self.unexpected: list[list[_Envelope]] = [[] for _ in range(nranks)]
        # Bumped on every arrival at each rank; lets probe() block.
        self.arrivals: list[Counter] = [
            Counter(f"{label}.arrivals[{r}]") for r in range(nranks)
        ]


def _complete_recv(
    comm: "Comm",
    posted: _PostedRecv,
    env: _Envelope,
    data: np.ndarray,
    *,
    land_now: bool = False,
) -> None:
    """Fill the posted buffer and complete the request after the match overhead.

    Eager messages pay an unpack copy out of the library's bounce buffer;
    rendezvous payloads land directly in the user buffer (zero-copy), so
    they only pay the match overhead. ``land_now`` copies the payload out
    synchronously (rendezvous: ``data`` is a live view of the sender's
    buffer, which becomes legally reusable the instant the send request
    completes) while still deferring request completion by the overhead.
    """
    if env.nbytes > posted.buf.nbytes:
        raise MpiError(
            f"message truncation: {env.nbytes} bytes arrived for a "
            f"{posted.buf.nbytes}-byte receive (tag {env.tag})"
        )
    spec = comm.ctx.spec
    engine = comm.ctx.engine
    delay = spec.mpi_match_overhead
    if env.rendezvous is None:
        delay += spec.copy_time(env.nbytes)
        _irhook.annotate(_irhook.CK_PARAM_COPY, _irhook.F_MPI_MATCH, env.nbytes)
    else:
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_MATCH)
    if land_now:
        posted.buf[: env.nbytes] = data[: env.nbytes]

    def finish() -> None:
        if not land_now:
            posted.buf[: env.nbytes] = data[: env.nbytes]
        san = comm.ctx.sanitizer
        if san is not None and env.clock is not None and posted.dst_world >= 0:
            san.merge(posted.dst_world, env.clock)
        posted.request.status.source = env.src
        posted.request.status.tag = env.tag
        posted.request.status.count = env.nbytes
        posted.request._complete()

    engine.call_in(delay, finish)


def _start_rendezvous_data(comm: "Comm", posted: _PostedRecv, env: _Envelope) -> None:
    """Target matched an RTS: send CTS back, then move the payload."""
    rv = env.rendezvous
    assert rv is not None
    fabric = comm.ctx.fabric
    dst_world = comm.world_rank(comm.rank)

    def on_cts_at_sender() -> None:
        def on_payload_delivered() -> None:
            # Land the payload before completing the send request: once the
            # sender's wait() returns it may legally scribble on the buffer
            # rv.payload views, so the copy-out cannot be deferred.
            _complete_recv(comm, posted, env, rv.payload, land_now=True)
            rv.send_request._complete()

        fabric.send(
            rv.src_world, dst_world, env.nbytes, on_payload_delivered, reliable=True
        )

    fabric.send(dst_world, rv.src_world, _ENVELOPE_BYTES, on_cts_at_sender, reliable=True)


def deliver(comm: "Comm", dst: int, env: _Envelope, matching: Matching) -> None:
    """Scheduler-context arrival of ``env`` at comm rank ``dst``."""
    for i, posted in enumerate(matching.posted[dst]):
        if posted.matches(env):
            del matching.posted[dst][i]
            if env.rendezvous is not None:
                _start_rendezvous_data(comm, posted, env)
            else:
                assert env.data is not None
                _complete_recv(comm, posted, env, env.data)
            matching.arrivals[dst].add()
            return
    matching.unexpected[dst].append(env)
    matching.arrivals[dst].add()


def isend(comm: "Comm", matching: Matching, buf, dest: int, tag: int) -> Request:
    """Nonblocking send. The payload is snapshotted at call time."""
    ctx = comm.ctx
    spec = ctx.spec
    comm.check_revoked()
    comm.check_peer(dest)
    view = _as_bytes_view(buf if buf is not None else np.empty(0, np.uint8))
    nbytes = view.nbytes
    req = Request(f"isend(dst={dest},tag={tag})", ctx.proc)
    req.status.source = comm.rank
    req.status.tag = tag
    req.status.count = nbytes
    src_world = comm.world_rank(comm.rank)
    dst_world = comm.world_rank(dest)

    san = ctx.sanitizer
    obs = ctx.metrics
    eager = nbytes <= spec.mpi_eager_threshold
    if obs is not None:
        obs.record(
            src_world, "mpi.send", nbytes,
            spec.mpi_p2p_overhead + (spec.copy_time(nbytes) if eager else 0.0),
        )
    if eager:
        # Copy into the library's eager buffer, inject, complete locally.
        # The copy is mandatory: an eager send returns with the user buffer
        # immediately reusable.
        data = view.copy()
        _irhook.annotate(_irhook.CK_PARAM_COPY, _irhook.F_MPI_P2P, nbytes)
        ctx.proc.sleep(spec.mpi_p2p_overhead + spec.copy_time(nbytes))
        env = _Envelope(src=comm.rank, tag=tag, nbytes=nbytes, data=data, rendezvous=None)
        if san is not None:
            env.clock = san.snapshot(src_world)
        ctx.fabric.send(
            src_world,
            dst_world,
            nbytes + _ENVELOPE_BYTES,
            lambda: deliver(comm, dest, env, matching),
            reliable=True,
        )
        req._complete()
    else:
        # Rendezvous: ship a view — the user buffer may not be reused until
        # the send request completes, which is when the payload lands, so
        # the only copy is the fill into the posted receive buffer.
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_P2P)
        ctx.proc.sleep(spec.mpi_p2p_overhead)
        rv = _Rendezvous(payload=view, send_request=req, src_world=src_world)
        env = _Envelope(src=comm.rank, tag=tag, nbytes=nbytes, data=None, rendezvous=rv)
        if san is not None:
            env.clock = san.snapshot(src_world)
        ctx.fabric.send(
            src_world,
            dst_world,
            _ENVELOPE_BYTES,
            lambda: deliver(comm, dest, env, matching),
            reliable=True,
        )
    return req


def irecv(comm: "Comm", matching: Matching, buf, source: int, tag: int) -> Request:
    """Nonblocking receive into ``buf`` (a writable contiguous numpy array)."""
    ctx = comm.ctx
    spec = ctx.spec
    comm.check_revoked()
    if source != ANY_SOURCE:
        comm.check_peer(source)
    view = _as_bytes_view(buf if buf is not None else np.empty(0, np.uint8))
    req = Request(f"irecv(src={source},tag={tag})", ctx.proc)
    posted = _PostedRecv(
        src=source, tag=tag, buf=view, request=req,
        dst_world=comm.world_rank(comm.rank),
    )
    obs = ctx.metrics
    if obs is not None:
        obs.record(posted.dst_world, "mpi.recv", view.nbytes, spec.mpi_p2p_overhead)
    _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_P2P)
    ctx.proc.sleep(spec.mpi_p2p_overhead)
    # Search the unexpected queue in arrival order.
    queue = matching.unexpected[comm.rank]
    for i, env in enumerate(queue):
        if posted.matches(env):
            del queue[i]
            if env.rendezvous is not None:
                _start_rendezvous_data(comm, posted, env)
            else:
                assert env.data is not None
                _complete_recv(comm, posted, env, env.data)
            return req
    matching.posted[comm.rank].append(posted)
    return req


def probe(
    comm: "Comm", matching: Matching, source: int, tag: int, *, blocking: bool
) -> _Envelope | None:
    """Check for a matching unexpected message without receiving it."""
    while True:
        comm.check_revoked()
        for env in matching.unexpected[comm.rank]:
            if _filters_match(source, tag, env):
                return env
        if not blocking:
            return None
        seen = matching.arrivals[comm.rank].count
        matching.arrivals[comm.rank].wait_geq(comm.ctx.proc, seen + 1)
