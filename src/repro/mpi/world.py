"""MPI world: per-cluster shared state and the per-rank entry facade.

Usage from a rank program::

    world = MpiWorld.get(ctx.cluster)
    mpi = world.init(ctx)            # MPI_Init
    mpi.COMM_WORLD.barrier()
    win = mpi.win_allocate(1024)     # MPI_WIN_ALLOCATE on COMM_WORLD
"""

from __future__ import annotations

import numpy as np

from repro.mpi.comm import Comm, _CommState
from repro.mpi.window import (
    Window,
    win_allocate,
    win_allocate_shared,
    win_create_dynamic,
)
from repro.sim.cluster import Cluster, RankCtx
from repro.sim.memory import MB
from repro.util.errors import MpiError


class MpiWorld:
    """Shared MPI library state for one cluster run."""

    @classmethod
    def get(cls, cluster: Cluster) -> "MpiWorld":
        return cluster.shared("mpi-world", lambda: cls(cluster))

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._context_counter = 0
        self.world_state = _CommState(
            self, tuple(range(cluster.nranks)), self.next_context_id()
        )
        self.initialized: set[int] = set()
        # win_allocate coordination: (context_id, alloc_seq) -> shared state,
        # and (context_id, rank) -> that rank's allocation sequence number.
        self._win_boards: dict[tuple[int, int], object] = {}
        self._win_counter: dict[tuple[int, int], int] = {}

    def next_context_id(self) -> int:
        cid = self._context_counter
        self._context_counter += 1
        return cid

    def init(self, ctx: RankCtx) -> "MpiRank":
        """MPI_Init for one rank: registers it and charges the memory model."""
        if ctx.rank in self.initialized:
            raise MpiError(f"rank {ctx.rank} called MPI init twice")
        self.initialized.add(ctx.rank)
        spec = ctx.spec
        ctx.memory.alloc(ctx.rank, "mpi/base", spec.mpi_mem_base_mb * MB)
        ctx.memory.alloc(
            ctx.rank,
            "mpi/peers",
            spec.mpi_mem_per_rank_mb * MB * self.cluster.nranks,
        )
        return MpiRank(self, ctx)


class MpiRank:
    """Per-rank MPI facade (what MPI_Init hands back)."""

    def __init__(self, world: MpiWorld, ctx: RankCtx):
        self.world = world
        self.ctx = ctx
        self.COMM_WORLD = Comm(world.world_state, self, ctx.rank)
        # Nonblocking-collective progress agents: one per communicator this
        # rank has used NBCs on (keyed by context id).
        self._nbc_agents: dict[int, tuple] = {}

    def _nbc_agent(self, comm: Comm):
        """The (agent, agent-side comm view) pair for ``comm``."""
        from types import SimpleNamespace

        from repro.sim.agent import WorkerAgent

        cid = comm.state.context_id
        if cid not in self._nbc_agents:
            agent = WorkerAgent(self.ctx, name=f"nbc{self.ctx.rank}.c{cid}")
            view = Comm(
                comm.state, SimpleNamespace(ctx=agent.ctx), comm.rank, space="nbc"
            )
            self._nbc_agents[cid] = (agent, view)
        return self._nbc_agents[cid]

    @property
    def rank(self) -> int:
        return self.ctx.rank

    @property
    def size(self) -> int:
        return self.world.cluster.nranks

    def win_allocate(
        self,
        nbytes: int | None = None,
        *,
        shape: tuple[int, ...] | int | None = None,
        dtype=np.float64,
        comm: Comm | None = None,
        memory_model: str = "unified",
    ) -> Window:
        """MPI_WIN_ALLOCATE (collective over ``comm``, default COMM_WORLD)."""
        return win_allocate(
            comm or self.COMM_WORLD,
            nbytes=nbytes,
            shape=shape,
            dtype=dtype,
            memory_model=memory_model,
        )

    def win_allocate_shared(
        self,
        *,
        shape: tuple[int, ...] | int,
        dtype=np.float64,
        comm: Comm | None = None,
    ) -> Window:
        """MPI_WIN_ALLOCATE_SHARED (collective; same-node groups only)."""
        return win_allocate_shared(
            comm or self.COMM_WORLD, shape=shape, dtype=dtype
        )

    def win_create_dynamic(self, *, dtype=np.uint8, comm: Comm | None = None) -> Window:
        """MPI_WIN_CREATE_DYNAMIC (collective)."""
        return win_create_dynamic(comm or self.COMM_WORLD, dtype=dtype)
