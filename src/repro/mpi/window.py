"""MPI-3 RMA: windows, one-sided operations, passive-target synchronization.

Implements the MPI-3 additions the paper's CAF-MPI runtime relies on
(§2.2): ``MPI_WIN_ALLOCATE``, passive-target ``LOCK_ALL`` epochs,
``PUT``/``GET``/``ACCUMULATE``, request-generating ``RPUT``/``RGET``,
one-sided atomics (``FETCH_AND_OP``, ``COMPARE_AND_SWAP``), and the
completion routines ``FLUSH`` / ``FLUSH_ALL`` / ``FLUSH_LOCAL``.

Behavioural fidelity:

* **Linear FLUSH_ALL** — MPICH derivatives flush every rank of the window's
  group; with any epoch activity the call costs
  ``group_size * mpi_flush_all_per_target`` (the paper's Figure 4 analysis
  of RandomAccess `event_notify` time). With no activity it costs only
  ``mpi_flush_all_idle``, which is why the paper's NOTIFY *microbenchmark*
  stays flat while full RandomAccess does not.
* **Send/recv-backed RMA** (``spec.mpi_rma_over_sendrecv``) — Cray MPI at
  the time implemented RMA over two-sided internals; every one-sided op
  pays an extra origin overhead and a target-side software delay (the
  paper's Figure 5 analysis). The library still progresses these without
  user intervention (Cray MPI has an internal agent), just more slowly.
* Hardware-RMA mode completes PUT/GET purely in the fabric — no target CPU
  involvement — which is what makes the CAF-MPI design deadlock-free where
  AM-based coarray writes are not (Figure 2).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.mpi.constants import NO_OP, REPLACE, Op
from repro.mpi.request import Request
from repro.sim import irhook as _irhook
from repro.sim.sync import SimEvent
from repro.util.buffers import flatten, snapshot
from repro.util.errors import MpiError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpi.comm import Comm

_RMA_ENVELOPE_BYTES = 48
_win_ids = itertools.count()


class _PendingPut:
    """A rendezvous PUT whose payload is still a view of the user buffer.

    ``arr`` is swapped for a private copy if the origin claims buffer-reuse
    rights (flush_local) before delivery reads it; identity-hashed so sets
    work despite holding an ndarray.
    """

    __slots__ = ("target", "arr")

    def __init__(self, target: int, arr: np.ndarray):
        self.target = target
        self.arr = arr


class _WindowState:
    """Shared (library-side) state of one window."""

    def __init__(
        self,
        group: tuple[int, ...],
        buffers: list[np.ndarray | None],
        win_id: int,
        *,
        memory_model: str = "unified",
        dynamic: bool = False,
        shared: bool = False,
    ):
        self.group = group  # comm rank -> world rank
        self.buffers = buffers  # per comm rank, flat arrays of the window dtype
        self.win_id = win_id
        self.memory_model = memory_model  # "unified" (MPI-3) or "separate" (MPI-2)
        self.dynamic = dynamic  # MPI_WIN_CREATE_DYNAMIC: memory attached later
        self.shared = shared  # MPI_WIN_ALLOCATE_SHARED
        n = len(group)
        # pending[o][t]: ops from origin o not yet complete at target t.
        self.pending = [[0] * n for _ in range(n)]
        # inflight[o]: total pending ops from origin o across all targets.
        # Lets FLUSH_ALL test one integer instead of scanning pending[o].
        self.inflight = [0] * n
        self.flush_waiters: dict[tuple[int, int], list[SimEvent]] = {}
        # Origin-level waiters fired when inflight[o] drains to zero.
        self.quiet_waiters: dict[int, list[SimEvent]] = {}
        # Origins with epoch activity since their last FLUSH_ALL.
        self.dirty: list[bool] = [False] * n
        self.lock_all_held: list[bool] = [False] * n
        # Per-target exclusive/shared lock state: (mode, holders, wait queue).
        self.locks: list[dict] = [
            {"mode": None, "holders": set(), "queue": []} for _ in range(n)
        ]
        # Rendezvous PUT payloads still riding as live views of the origin's
        # user buffer (zero-copy): flush_local must buffer these before the
        # user regains reuse rights. Cleared at delivery.
        self.unread_puts: list[set["_PendingPut"]] = [set() for _ in range(n)]
        # Dynamic windows: per rank, base displacement -> attached region.
        self.regions: list[dict[int, np.ndarray]] = [{} for _ in range(n)]
        self.next_base: list[int] = [0] * n
        # Separate model: per rank, private copy + mask of RMA-updated slots.
        self.private_copies: list[np.ndarray | None] = [None] * n
        self.rma_dirty_mask: list[np.ndarray | None] = [None] * n
        self.freed = False

    # -- target memory resolution (standard vs dynamic windows) -----------

    def resolve(self, rank: int, offset: int, count: int) -> tuple[np.ndarray, int]:
        """Locate the target array and local offset for an access."""
        if self.dynamic:
            for base, region in self.regions[rank].items():
                if base <= offset and offset + count <= base + region.size:
                    return region, offset - base
            raise MpiError(
                f"dynamic-window access [{offset}, {offset + count}) hits no "
                f"attached region on rank {rank}"
            )
        buf = self.buffers[rank]
        if buf is None:
            raise MpiError(f"rank {rank} has no window memory")
        if offset < 0 or offset + count > buf.size:
            raise MpiError(
                f"RMA access [{offset}, {offset + count}) outside target "
                f"window of {buf.size} elements"
            )
        return buf, offset

    def write_target(self, rank: int, offset: int, data: np.ndarray) -> None:
        buf, off = self.resolve(rank, offset, data.size)
        buf[off : off + data.size] = data
        mask = self.rma_dirty_mask[rank]
        if mask is not None and not self.dynamic:
            mask[off : off + data.size] = True

    def read_target(self, rank: int, offset: int, count: int) -> np.ndarray:
        buf, off = self.resolve(rank, offset, count)
        return buf[off : off + count].copy()

    def apply_target(self, rank: int, offset: int, data: np.ndarray, op: Op) -> np.ndarray:
        """Atomically combine; returns the previous contents."""
        buf, off = self.resolve(rank, offset, data.size)
        sl = slice(off, off + data.size)
        old = buf[sl].copy()
        buf[sl] = op(buf[sl], data)
        mask = self.rma_dirty_mask[rank]
        if mask is not None and not self.dynamic:
            mask[sl] = True
        return old


class Window:
    """One rank's handle on an RMA window (what ``MPI_WIN_ALLOCATE`` returns)."""

    def __init__(self, state: _WindowState, comm: "Comm"):
        self.state = state
        self.comm = comm
        self.ctx = comm.ctx
        self.rank = comm.rank
        # The sanitizer and metrics registry are fixed at cluster
        # construction, before any rank runs; cache the handles so per-op
        # guards are one attribute load.
        self._san = comm.ctx.sanitizer
        self._obs = comm.ctx.metrics

    # -- local access ------------------------------------------------------

    @property
    def local(self) -> np.ndarray:
        """This rank's window segment.

        Under the MPI-3 **unified** memory model, plain loads/stores to
        this view are coherent with RMA (§2.2). Under the MPI-2-style
        **separate** model this is the *private* copy: RMA lands in the
        public copy and only becomes visible here after :meth:`sync`.
        """
        if self.state.dynamic:
            raise MpiError("dynamic windows have no implicit local segment; "
                           "use the array passed to attach()")
        san = self._san
        if self.state.memory_model == "separate":
            private = self.state.private_copies[self.rank]
            assert private is not None
            if san is not None:
                mask = self.state.rma_dirty_mask[self.rank]
                if mask is not None and mask.any():
                    san.win_sync_violation(
                        self._world(self.rank),
                        self.win_id,
                        [(0, private.nbytes)],
                    )
            return private
        buf = self.state.buffers[self.rank]
        assert buf is not None
        if san is not None and not san.is_exempt_window(self.win_id):
            from repro.sanitizer.view import tracked_view

            world = self._world(self.rank)
            return tracked_view(buf, san, ("win", self.win_id, world), world)
        return buf

    def sync(self) -> None:
        """MPI_WIN_SYNC: reconcile the private and public copies (separate
        memory model). RMA updates since the last sync become visible in
        ``local``; local stores become visible to RMA readers. A no-op
        under the unified model (§2.2's point: coherent hardware makes the
        separate model's bookkeeping unnecessary)."""
        state = self.state
        if state.memory_model != "separate":
            return
        public = state.buffers[self.rank]
        private = state.private_copies[self.rank]
        mask = state.rma_dirty_mask[self.rank]
        assert public is not None and private is not None and mask is not None
        _irhook.annotate(_irhook.CK_COPY, public.nbytes)
        self.ctx.proc.sleep(self.ctx.spec.copy_time(public.nbytes))
        private[mask] = public[mask]
        mask[:] = False
        public[...] = private

    def shared_query(self, rank: int) -> np.ndarray:
        """MPI_WIN_SHARED_QUERY: direct load/store access to another
        rank's segment of a shared window (same shared-memory node only)."""
        if not self.state.shared:
            raise MpiError("shared_query on a non-shared window")
        spec = self.ctx.spec
        me_world = self._world(self.rank)
        other_world = self._world(rank)
        if spec.node_of(me_world) != spec.node_of(other_world):
            raise MpiError(
                f"rank {rank} is not on this rank's shared-memory node"
            )
        buf = self.state.buffers[rank]
        assert buf is not None
        return buf

    # -- dynamic windows (§2.2) -------------------------------------------

    def attach(self, nelems: int) -> int:
        """MPI_WIN_ATTACH: expose ``nelems`` elements; returns the base
        displacement remote ranks use to address this region."""
        if not self.state.dynamic:
            raise MpiError("attach() on a non-dynamic window")
        if nelems <= 0:
            raise MpiError(f"attach needs a positive size, got {nelems}")
        state = self.state
        base = state.next_base[self.rank]
        # Leave a guard gap so out-of-region accesses fault.
        state.next_base[self.rank] = base + nelems + 64
        region = np.zeros(nelems, self._dtype())
        state.regions[self.rank][base] = region
        self.ctx.memory.alloc(
            self.ctx.rank, f"mpi/win{self.win_id}", region.nbytes
        )
        return base

    def detach(self, base: int) -> None:
        """MPI_WIN_DETACH."""
        if not self.state.dynamic:
            raise MpiError("detach() on a non-dynamic window")
        region = self.state.regions[self.rank].pop(base, None)
        if region is None:
            raise MpiError(f"no region attached at displacement {base}")
        self.ctx.memory.free(
            self.ctx.rank, f"mpi/win{self.win_id}", region.nbytes
        )

    def region(self, base: int) -> np.ndarray:
        """The locally-attached region at ``base`` (dynamic windows)."""
        if not self.state.dynamic:
            raise MpiError("region() on a non-dynamic window")
        try:
            return self.state.regions[self.rank][base]
        except KeyError:
            raise MpiError(f"no region attached at displacement {base}") from None

    def _dtype(self) -> np.dtype:
        if self.state.dynamic:
            return np.dtype(getattr(self.state, "dtype", np.uint8))
        buf = self.state.buffers[self.rank]
        assert buf is not None
        return buf.dtype

    @property
    def group_size(self) -> int:
        return len(self.state.group)

    @property
    def win_id(self) -> int:
        return self.state.win_id

    # -- helpers --------------------------------------------------------------

    def _check_target(self, target: int, offset: int, count: int) -> None:
        if self.state.freed:
            raise MpiError("window has been freed")
        if not 0 <= target < self.group_size:
            raise MpiError(f"target {target} out of range [0, {self.group_size})")
        self.comm.check_alive(target)  # ULFM: RMA to a dead rank fails eagerly
        if count > 0:
            self.state.resolve(target, offset, count)  # bounds / region check

    def _origin_overhead(self, base: float) -> float:
        spec = self.ctx.spec
        if spec.mpi_rma_over_sendrecv:
            return base + spec.mpi_sendrecv_rma_extra
        return base

    def _target_delay(self) -> float:
        """Target-side software delay before an op commits (send/recv mode)."""
        spec = self.ctx.spec
        return spec.mpi_match_overhead if spec.mpi_rma_over_sendrecv else 0.0

    def _annotate_origin(self, field: int, nbytes: int | None = None) -> None:
        """IR cost annotation mirroring _origin_overhead (+ optional pack copy)."""
        if _irhook.RECORDER is None:
            return
        if self.ctx.spec.mpi_rma_over_sendrecv:
            if nbytes is None:
                _irhook.annotate(
                    _irhook.CK_PARAM2, field, _irhook.F_MPI_SENDRECV_EXTRA
                )
            else:
                _irhook.annotate(
                    _irhook.CK_PARAM2_COPY, field,
                    _irhook.F_MPI_SENDRECV_EXTRA, nbytes,
                )
        elif nbytes is None:
            _irhook.annotate(_irhook.CK_PARAM, field)
        else:
            _irhook.annotate(_irhook.CK_PARAM_COPY, field, nbytes)

    def _annotate_ack(self, origin: int, target: int) -> None:
        """IR cost annotation mirroring _ack_latency."""
        _irhook.annotate(_irhook.CK_ACK, self._world(origin), self._world(target))

    def _annotate_target_delay(self) -> None:
        """IR cost annotation for the nonzero _target_delay branch."""
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_MATCH)

    def _op_started(self, target: int) -> None:
        state = self.state
        rank = self.rank
        state.pending[rank][target] += 1
        state.inflight[rank] += 1
        state.dirty[rank] = True

    def _op_done_at_target(self, origin: int, target: int) -> None:
        state = self.state
        pending = state.pending[origin]
        pending[target] -= 1
        state.inflight[origin] -= 1
        if pending[target] == 0 and state.flush_waiters:
            for ev in state.flush_waiters.pop((origin, target), []):
                ev.fire()
        if state.inflight[origin] == 0 and state.quiet_waiters:
            for ev in state.quiet_waiters.pop(origin, []):
                ev.fire()

    def _ack_latency(self, origin: int, target: int) -> float:
        """Completion-acknowledgement travel time back to the origin.

        One-way ops (PUT/ACCUMULATE) commit at delivery, but the origin
        only *learns* of remote completion an ack later.
        """
        spec = self.ctx.spec
        src, dst = self._world(origin), self._world(target)
        if src == dst or spec.node_of(src) == spec.node_of(dst):
            return spec.loopback_latency
        return spec.latency

    def _world(self, comm_rank: int) -> int:
        return self.state.group[comm_rank]

    # -- sanitizer plumbing (no-ops unless the cluster sanitizes) ----------

    def _san_access(
        self,
        target: int,
        elem_ranges,
        op: str,
        *,
        is_write: bool,
        atomic: bool = False,
    ):
        """Record one RMA access with the sanitizer; returns the shadow
        record (released later at this op's synchronization point) or None.

        Also checks the passive-target epoch contract: an op needs
        lock_all, a lock on the target, or an open fence on the window.
        """
        san = self._san
        if san is None:
            return None
        state = self.state
        in_epoch = (
            state.lock_all_held[self.rank]
            or self.rank in state.locks[target]["holders"]
            or self.win_id in san.fence_windows
        )
        target_world = self._world(target)
        if not in_epoch:
            san.epoch_violation(self._world(self.rank), op, self.win_id, target_world)
        itemsize = self._dtype().itemsize
        ranges = [(lo * itemsize, hi * itemsize) for lo, hi in elem_ranges]
        return san.record_remote(
            self._world(self.rank),
            ("win", self.win_id, target_world),
            ranges,
            op,
            is_write=is_write,
            atomic=atomic,
        )

    def _san_release_on(self, req: Request, rec) -> None:
        """Release ``rec`` when ``req`` completes (round-trip ops, whose
        request completion *is* remote completion)."""
        if rec is None:
            return
        san = self._san
        req._event.subscribe(lambda: san.release_records((rec,)))

    # -- one-sided data movement ------------------------------------------------

    def put(self, data, target: int, offset: int = 0) -> None:
        """MPI_PUT: one-sided write; remote completion requires a flush."""
        self.rput(data, target, offset)

    def rput(self, data, target: int, offset: int = 0) -> Request:
        """MPI_RPUT: like PUT, returning a request for *local* completion."""
        arr, private = flatten(data, self._dtype())
        self._check_target(target, offset, arr.size)
        spec = self.ctx.spec
        obs = self._obs
        if obs is not None:
            obs.record(
                self.ctx.rank, "mpi.rput", arr.nbytes,
                self._origin_overhead(spec.mpi_rma_overhead),
            )
        self._annotate_origin(_irhook.F_MPI_RMA)
        self.ctx.proc.sleep(self._origin_overhead(spec.mpi_rma_overhead))
        self._op_started(target)
        self._san_access(
            target, [(offset, offset + arr.size)], "rput", is_write=True
        )
        eager = arr.nbytes <= spec.mpi_eager_threshold
        # Eager PUTs complete locally on return, so the library must buffer
        # the data now; rendezvous PUTs may read the user buffer at delivery
        # time because the contract forbids reuse before local completion —
        # and flush_local (which grants reuse early) buffers any still-unread
        # payload via the unread_puts registry.
        payload = arr.copy() if (eager and not private) else arr
        req = Request(f"rput(win={self.win_id},target={target})", self.ctx.proc)
        origin = self.rank
        pp = None
        if not eager and not private:
            pp = _PendingPut(target, payload)
            self.state.unread_puts[origin].add(pp)
        engine = self.ctx.engine
        target_delay = self._target_delay()
        ack = self._ack_latency(origin, target)

        def on_delivered() -> None:
            def commit() -> None:
                if pp is not None:
                    data = pp.arr
                    self.state.unread_puts[origin].discard(pp)
                else:
                    data = payload
                self.state.write_target(target, offset, data)
                self._annotate_ack(origin, target)
                engine.call_in(ack, lambda: (self._op_done_at_target(origin, target), req._complete()))

            if target_delay:
                self._annotate_target_delay()
                engine.call_in(target_delay, commit)
            else:
                commit()

        self.ctx.fabric.send(
            self._world(origin),
            self._world(target),
            payload.nbytes + _RMA_ENVELOPE_BYTES,
            on_delivered,
            reliable=True,
        )
        if eager:
            # Small transfers are buffered by the library: locally complete now.
            req._complete()
        return req

    def get(self, dest, target: int, offset: int = 0) -> None:
        """MPI_GET into ``dest``; completion requires a flush (use rget+wait
        for request-based completion)."""
        self.rget(dest, target, offset)

    def rget(self, dest, target: int, offset: int = 0) -> Request:
        """MPI_RGET: request completion == local *and* remote completion."""
        dest_arr = np.asarray(dest)
        if dest_arr.dtype != self._dtype():
            raise MpiError(
                f"rget destination dtype {dest_arr.dtype} != window dtype {self._dtype()}"
            )
        count = dest_arr.size
        self._check_target(target, offset, count)
        spec = self.ctx.spec
        obs = self._obs
        if obs is not None:
            obs.record(
                self.ctx.rank, "mpi.rget", count * self._dtype().itemsize,
                self._origin_overhead(spec.mpi_rma_overhead),
            )
        self._annotate_origin(_irhook.F_MPI_RMA)
        self.ctx.proc.sleep(self._origin_overhead(spec.mpi_rma_overhead))
        self._op_started(target)
        rec = self._san_access(
            target, [(offset, offset + count)], "rget", is_write=False
        )
        req = Request(f"rget(win={self.win_id},target={target})", self.ctx.proc)
        self._san_release_on(req, rec)
        origin = self.rank
        fabric = self.ctx.fabric
        engine = self.ctx.engine
        target_delay = self._target_delay()
        nbytes = count * self._dtype().itemsize

        def at_target() -> None:
            def respond() -> None:
                payload = self.state.read_target(target, offset, count)

                def at_origin() -> None:
                    dest_arr.reshape(-1)[...] = payload
                    self._op_done_at_target(origin, target)
                    req._complete()

                fabric.send(
                    self._world(target), self._world(origin), nbytes, at_origin,
                    reliable=True,
                )

            if target_delay:
                self._annotate_target_delay()
                engine.call_in(target_delay, respond)
            else:
                respond()

        fabric.send(
            self._world(origin), self._world(target), _RMA_ENVELOPE_BYTES, at_target,
            reliable=True,
        )
        return req

    # -- one-sided atomics ---------------------------------------------------------

    def accumulate(self, data, target: int, offset: int = 0, op: Op = REPLACE) -> None:
        """MPI_ACCUMULATE: elementwise atomic update of target memory."""
        self.raccumulate(data, target, offset, op)

    def raccumulate(self, data, target: int, offset: int = 0, op: Op = REPLACE) -> Request:
        # Atomics always snapshot: the combine runs at the target later and
        # must see the call-time value regardless of completion mode.
        snap = snapshot(data, self._dtype())
        self._check_target(target, offset, snap.size)
        spec = self.ctx.spec
        obs = self._obs
        if obs is not None:
            obs.record(
                self.ctx.rank, "mpi.accumulate", snap.nbytes,
                self._origin_overhead(spec.mpi_atomic_overhead),
            )
        self._annotate_origin(_irhook.F_MPI_ATOMIC)
        self.ctx.proc.sleep(self._origin_overhead(spec.mpi_atomic_overhead))
        self._op_started(target)
        self._san_access(
            target,
            [(offset, offset + snap.size)],
            "raccumulate",
            is_write=True,
            atomic=True,
        )
        req = Request(f"raccumulate(win={self.win_id},target={target})", self.ctx.proc)
        origin = self.rank
        engine = self.ctx.engine
        target_delay = self._target_delay()
        ack = self._ack_latency(origin, target)

        def on_delivered() -> None:
            def commit() -> None:
                self.state.apply_target(target, offset, snap, op)
                self._annotate_ack(origin, target)
                engine.call_in(ack, lambda: (self._op_done_at_target(origin, target), req._complete()))

            if target_delay:
                self._annotate_target_delay()
                engine.call_in(target_delay, commit)
            else:
                commit()

        self.ctx.fabric.send(
            self._world(origin),
            self._world(target),
            snap.nbytes + _RMA_ENVELOPE_BYTES,
            on_delivered,
            reliable=True,
        )
        if snap.nbytes <= spec.mpi_eager_threshold:
            req._complete()
        return req

    def get_accumulate(self, data, result, target: int, offset: int = 0, op: Op = NO_OP):
        """MPI_GET_ACCUMULATE (blocking wait on the internal request)."""
        obs = self._obs
        t0 = self.ctx.engine.now if obs is not None else 0.0
        out = self._fetch_op_common(data, result, target, offset, op).wait()
        if obs is not None:
            obs.record(
                self.ctx.rank, "mpi.fetch_op",
                np.asarray(result).nbytes, self.ctx.engine.now - t0,
            )
        return out

    def fetch_and_op(self, value, result, target: int, offset: int = 0, op: Op = NO_OP):
        """MPI_FETCH_AND_OP: single-element fast path of GET_ACCUMULATE."""
        obs = self._obs
        t0 = self.ctx.engine.now if obs is not None else 0.0
        out = self._fetch_op_common(value, result, target, offset, op).wait()
        if obs is not None:
            obs.record(
                self.ctx.rank, "mpi.fetch_op",
                np.asarray(result).nbytes, self.ctx.engine.now - t0,
            )
        return out

    def _fetch_op_common(self, data, result, target: int, offset: int, op: Op) -> Request:
        snap = snapshot(data, self._dtype())
        result_arr = np.asarray(result).reshape(-1)
        self._check_target(target, offset, snap.size)
        spec = self.ctx.spec
        self._annotate_origin(_irhook.F_MPI_ATOMIC)
        self.ctx.proc.sleep(self._origin_overhead(spec.mpi_atomic_overhead))
        self._op_started(target)
        rec = self._san_access(
            target,
            [(offset, offset + snap.size)],
            "fetch_and_op",
            is_write=True,
            atomic=True,
        )
        req = Request(f"fetch_op(win={self.win_id},target={target})", self.ctx.proc)
        self._san_release_on(req, rec)
        origin = self.rank
        fabric = self.ctx.fabric
        engine = self.ctx.engine
        target_delay = self._target_delay()

        def at_target() -> None:
            def commit() -> None:
                old = self.state.apply_target(target, offset, snap, op)

                def at_origin() -> None:
                    result_arr[...] = old
                    self._op_done_at_target(origin, target)
                    req._complete()

                fabric.send(
                    self._world(target), self._world(origin), old.nbytes, at_origin,
                    reliable=True,
                )

            if target_delay:
                self._annotate_target_delay()
                engine.call_in(target_delay, commit)
            else:
                commit()

        fabric.send(
            self._world(origin),
            self._world(target),
            snap.nbytes + _RMA_ENVELOPE_BYTES,
            at_target,
            reliable=True,
        )
        return req

    def compare_and_swap(self, compare, value, result, target: int, offset: int = 0):
        """MPI_COMPARE_AND_SWAP on a single element."""
        dtype = self._dtype()
        cmp_val = np.asarray(compare, dtype=dtype).reshape(())
        new_val = np.asarray(value, dtype=dtype).reshape(())
        result_arr = np.asarray(result).reshape(-1)
        self._check_target(target, offset, 1)
        spec = self.ctx.spec
        obs = self._obs
        t0 = self.ctx.engine.now if obs is not None else 0.0
        self._annotate_origin(_irhook.F_MPI_ATOMIC)
        self.ctx.proc.sleep(self._origin_overhead(spec.mpi_atomic_overhead))
        self._op_started(target)
        rec = self._san_access(
            target, [(offset, offset + 1)], "compare_and_swap",
            is_write=True, atomic=True,
        )
        req = Request(f"cas(win={self.win_id},target={target})", self.ctx.proc)
        self._san_release_on(req, rec)
        origin = self.rank
        fabric = self.ctx.fabric
        engine = self.ctx.engine
        target_delay = self._target_delay()

        def at_target() -> None:
            def commit() -> None:
                tbuf, toff = self.state.resolve(target, offset, 1)
                old = tbuf[toff].copy()
                if old == cmp_val:
                    tbuf[toff] = new_val

                def at_origin() -> None:
                    result_arr[0] = old
                    self._op_done_at_target(origin, target)
                    req._complete()

                fabric.send(
                    self._world(target), self._world(origin), old.nbytes, at_origin,
                    reliable=True,
                )

            if target_delay:
                self._annotate_target_delay()
                engine.call_in(target_delay, commit)
            else:
                commit()

        fabric.send(
            self._world(origin),
            self._world(target),
            2 * dtype.itemsize + _RMA_ENVELOPE_BYTES,
            at_target,
            reliable=True,
        )
        req.wait()
        if obs is not None:
            obs.record(
                self.ctx.rank, "mpi.cas", dtype.itemsize, self.ctx.engine.now - t0
            )
        return result_arr[0]

    # -- passive-target synchronization ------------------------------------------

    def lock_all(self) -> None:
        """MPI_WIN_LOCK_ALL (shared): open a passive epoch to every target."""
        if self.state.lock_all_held[self.rank]:
            raise MpiError("lock_all while already holding lock_all")
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_FLUSH)
        self.ctx.proc.sleep(self.ctx.spec.mpi_flush_overhead)
        self.state.lock_all_held[self.rank] = True

    def unlock_all(self) -> None:
        """MPI_WIN_UNLOCK_ALL: completes all outstanding ops, closes the epoch."""
        if not self.state.lock_all_held[self.rank]:
            raise MpiError("unlock_all without lock_all")
        self.flush_all()
        self.state.lock_all_held[self.rank] = False

    def put_runs(self, data, target: int, runs: list[tuple[int, int]]) -> None:
        """PUT with a derived datatype: scatter ``data`` into the target's
        window at the given (offset, length) runs, as one network message
        (how MPI_Type_vector + MPI_PUT moves strided sections)."""
        arr, private = flatten(data, self._dtype())
        total = sum(length for _off, length in runs)
        if arr.size != total:
            raise MpiError(f"put_runs data has {arr.size} elements, runs cover {total}")
        for off, length in runs:
            self._check_target(target, int(off), int(length))
        spec = self.ctx.spec
        obs = self._obs
        if obs is not None:
            obs.record(
                self.ctx.rank, "mpi.put_runs", arr.nbytes,
                self._origin_overhead(spec.mpi_rma_overhead)
                + spec.copy_time(arr.nbytes),
            )
        # Origin packs the section, then one wire message carries it.
        self._annotate_origin(_irhook.F_MPI_RMA, arr.nbytes)
        self.ctx.proc.sleep(
            self._origin_overhead(spec.mpi_rma_overhead) + spec.copy_time(arr.nbytes)
        )
        self._op_started(target)
        self._san_access(
            target,
            [(int(off), int(off) + int(length)) for off, length in runs],
            "put_runs",
            is_write=True,
        )
        snap = arr if private else arr.copy()
        origin = self.rank
        engine = self.ctx.engine
        target_delay = self._target_delay()
        ack = self._ack_latency(origin, target)

        def on_delivered() -> None:
            def commit() -> None:
                cursor = 0
                for off, length in runs:
                    self.state.write_target(
                        target, int(off), snap[cursor : cursor + length]
                    )
                    cursor += length
                self._annotate_ack(origin, target)
                engine.call_in(ack, lambda: self._op_done_at_target(origin, target))

            if target_delay:
                self._annotate_target_delay()
                engine.call_in(target_delay, commit)
            else:
                commit()

        self.ctx.fabric.send(
            self._world(origin),
            self._world(target),
            snap.nbytes + _RMA_ENVELOPE_BYTES,
            on_delivered,
            reliable=True,
        )

    def get_runs(self, dest, target: int, runs: list[tuple[int, int]]) -> Request:
        """GET with a derived datatype: gather the target's runs into
        ``dest`` as one response message; returns a request (like RGET)."""
        dest_arr = np.asarray(dest).reshape(-1)
        total = sum(length for _off, length in runs)
        if dest_arr.size != total:
            raise MpiError(f"get_runs buffer has {dest_arr.size} elements, runs cover {total}")
        for off, length in runs:
            self._check_target(target, int(off), int(length))
        spec = self.ctx.spec
        obs = self._obs
        if obs is not None:
            obs.record(
                self.ctx.rank, "mpi.get_runs",
                total * self._dtype().itemsize,
                self._origin_overhead(spec.mpi_rma_overhead),
            )
        self._annotate_origin(_irhook.F_MPI_RMA)
        self.ctx.proc.sleep(self._origin_overhead(spec.mpi_rma_overhead))
        self._op_started(target)
        rec = self._san_access(
            target,
            [(int(off), int(off) + int(length)) for off, length in runs],
            "get_runs",
            is_write=False,
        )
        req = Request(f"get_runs(win={self.win_id},target={target})", self.ctx.proc)
        self._san_release_on(req, rec)
        origin = self.rank
        fabric = self.ctx.fabric
        engine = self.ctx.engine
        target_delay = self._target_delay()
        nbytes = total * self._dtype().itemsize

        def at_target() -> None:
            def respond() -> None:
                parts = [
                    self.state.read_target(target, int(off), int(length))
                    for off, length in runs
                ]
                payload = np.concatenate(parts) if parts else np.empty(0, self._dtype())

                def at_origin() -> None:
                    dest_arr[...] = payload
                    self._op_done_at_target(origin, target)
                    req._complete()

                fabric.send(
                    self._world(target), self._world(origin), nbytes, at_origin,
                    reliable=True,
                )

            if target_delay:
                self._annotate_target_delay()
                engine.call_in(target_delay, respond)
            else:
                respond()

        fabric.send(
            self._world(origin), self._world(target), _RMA_ENVELOPE_BYTES, at_target,
            reliable=True,
        )
        return req

    def lock(self, target: int, *, exclusive: bool = False) -> None:
        """MPI_WIN_LOCK: open a passive epoch to one target.

        Exclusive locks serialize against all other lock holders; shared
        locks coexist with other shared holders. Blocks while conflicting
        locks are held (the blocking possibility §3.3 calls out).
        """
        self._check_target(target, 0, 0)
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_FLUSH)
        self.ctx.proc.sleep(self.ctx.spec.mpi_flush_overhead)
        lock = self.state.locks[target]
        me = (self.rank, "exclusive" if exclusive else "shared")

        def admissible() -> bool:
            if not lock["holders"]:
                return True
            return not exclusive and lock["mode"] == "shared"

        while not (admissible() and (not lock["queue"] or lock["queue"][0] is me)):
            if me not in lock["queue"]:
                lock["queue"].append(me)
            ev = SimEvent(f"lock(win={self.win_id},t={target})")
            lock.setdefault("waiters", []).append(ev)
            ev.wait(self.ctx.proc)
        if me in lock["queue"]:
            lock["queue"].remove(me)
        lock["mode"] = "exclusive" if exclusive else "shared"
        lock["holders"].add(self.rank)

    def unlock(self, target: int) -> None:
        """MPI_WIN_UNLOCK: completes outstanding ops, releases the lock."""
        lock = self.state.locks[target]
        if self.rank not in lock["holders"]:
            raise MpiError(f"unlock(target={target}) without holding the lock")
        self.flush(target)
        lock["holders"].discard(self.rank)
        if not lock["holders"]:
            lock["mode"] = None
        for ev in lock.pop("waiters", []):
            ev.fire()

    def rflush(self, target: int) -> Request:
        """MPI_WIN_RFLUSH — the paper's §5 proposal, implemented.

        Starts remote-completion tracking for outstanding ops to ``target``
        and returns a request; constant software cost regardless of group
        size, and the latency can overlap computation. Not part of MPI-3 —
        this is the extension the paper asks the Forum to standardize.
        """
        self._check_target(target, 0, 0)
        obs = self._obs
        if obs is not None:
            obs.record(
                self.ctx.rank, "mpi.rflush", 0, self.ctx.spec.mpi_flush_overhead
            )
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_FLUSH)
        self.ctx.proc.sleep(self.ctx.spec.mpi_flush_overhead)
        req = Request(f"rflush(win={self.win_id},t={target})", self.ctx.proc)
        san = self._san
        if san is not None:
            open_recs = san.open_window_records(
                self.win_id, self._world(self.rank), self._world(target)
            )
            if open_recs:
                req._event.subscribe(lambda: san.release_records(open_recs))
        self._when_quiet([target], req)
        return req

    def rflush_all(self) -> Request:
        """MPI_WIN_RFLUSH_ALL: request-based remote completion to every
        target, at constant (not linear-in-P) software cost."""
        obs = self._obs
        if obs is not None:
            obs.record(
                self.ctx.rank, "mpi.rflush_all", 0, self.ctx.spec.mpi_flush_all_idle
            )
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_FLUSH_ALL_IDLE)
        self.ctx.proc.sleep(self.ctx.spec.mpi_flush_all_idle)
        self.state.dirty[self.rank] = False
        req = Request(f"rflush_all(win={self.win_id})", self.ctx.proc)
        san = self._san
        if san is not None:
            open_recs = san.open_window_records(self.win_id, self._world(self.rank))
            if open_recs:
                req._event.subscribe(lambda: san.release_records(open_recs))
        self._when_quiet(range(self.group_size), req)
        return req

    def _when_quiet(self, targets, req: Request) -> None:
        """Complete ``req`` once pending ops to all ``targets`` are done."""
        state = self.state
        origin = self.rank
        if state.inflight[origin] == 0:
            req._complete()
            return
        # Per-target tracking, not the shared inflight counter: the request
        # must complete when the ops pending *at call time* drain, and
        # inflight also counts ops the origin issues after rflush returns —
        # including ops to targets that had nothing pending here.
        remaining = [t for t in list(targets) if state.pending[origin][t] > 0]
        if not remaining:
            req._complete()
            return
        outstanding = [len(remaining)]

        def one_done() -> None:
            outstanding[0] -= 1
            if outstanding[0] == 0:
                req._complete()

        for t in remaining:
            ev = SimEvent(f"rflush-track(o={origin},t={t})")
            state.flush_waiters.setdefault((origin, t), []).append(ev)
            ev.subscribe(one_done)

    def flush(self, target: int) -> None:
        """MPI_WIN_FLUSH: wait for remote completion of my ops at ``target``."""
        self._check_target(target, 0, 0)
        obs = self._obs
        t0 = self.ctx.engine.now if obs is not None else 0.0
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_FLUSH)
        self.ctx.proc.sleep(self.ctx.spec.mpi_flush_overhead)
        self._wait_target_quiet(target)
        if obs is not None:
            obs.record(self.ctx.rank, "mpi.flush", 0, self.ctx.engine.now - t0)
        san = self._san
        if san is not None:
            san.release_window(
                self.win_id, self._world(self.rank), self._world(target)
            )

    def flush_all(self) -> None:
        """MPI_WIN_FLUSH_ALL — linear in group size when the epoch is active.

        MPICH derivatives (MVAPICH, Cray MPI) flush every rank in the window
        group; the paper identifies this as the dominant cost of CAF-MPI's
        ``event_notify`` in RandomAccess.
        """
        spec = self.ctx.spec
        state = self.state
        origin = self.rank
        obs = self._obs
        t0 = self.ctx.engine.now if obs is not None else 0.0
        dirty = bool(state.dirty[origin])
        if dirty:
            _irhook.annotate(
                _irhook.CK_MUL, _irhook.F_MPI_FLUSH_ALL_PER_TARGET, self.group_size
            )
            self.ctx.proc.sleep(self.group_size * spec.mpi_flush_all_per_target)
            state.dirty[origin] = False
        else:
            _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_FLUSH_ALL_IDLE)
            self.ctx.proc.sleep(spec.mpi_flush_all_idle)
        # The modeled cost above is linear in group size (MPICH behaviour);
        # the wall-clock wait is one counter check — inflight[origin] hits
        # zero exactly when the last pending op to any target completes, so
        # this resumes at the same virtual time the per-target loop did.
        while state.inflight[origin] > 0:
            ev = SimEvent(f"flush_all(win={self.win_id},o={origin})")
            state.quiet_waiters.setdefault(origin, []).append(ev)
            ev.wait(self.ctx.proc)
        if obs is not None:
            # Active epochs and the idle walk are distinct symbolic terms in
            # the IR (F_MPI_FLUSH_ALL_PER_TARGET vs F_MPI_FLUSH_ALL_IDLE) —
            # mirror the split here so the linear-in-P active cost is not
            # averaged away under the flat idle calls (§3.4, Fig. 4).
            kind = "mpi.flush_all" if dirty else "mpi.flush_all.idle"
            obs.record(self.ctx.rank, kind, 0, self.ctx.engine.now - t0)
        san = self._san
        if san is not None:
            san.release_window(self.win_id, self._world(self.rank))

    def flush_local(self, target: int) -> None:
        """MPI_WIN_FLUSH_LOCAL: origin buffers reusable (ops may still be in
        flight to the target). Rendezvous PUT payloads ride as live views of
        the user buffer, so any not yet read by delivery are buffered into
        private copies here — the library eats the memcpy (wall-clock only;
        the modeled cost stays the flat flush overhead)."""
        self._check_target(target, 0, 0)
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_FLUSH)
        self.ctx.proc.sleep(self.ctx.spec.mpi_flush_overhead)
        self._buffer_unread_puts(target)

    def flush_local_all(self) -> None:
        _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_FLUSH)
        self.ctx.proc.sleep(self.ctx.spec.mpi_flush_overhead)
        self._buffer_unread_puts(None)

    def _buffer_unread_puts(self, target: int | None) -> None:
        """Privatize still-in-flight PUT payloads viewing the user buffer.

        The user buffer cannot have changed since the put (reuse was illegal
        until now), so copying at this instant preserves the put-time value.
        """
        pend = self.state.unread_puts[self.rank]
        if not pend:
            return
        for pp in [p for p in pend if target is None or p.target == target]:
            pp.arr = pp.arr.copy()
            pend.discard(pp)

    def _wait_target_quiet(self, target: int) -> None:
        state = self.state
        origin = self.rank
        while state.pending[origin][target] > 0:
            ev = SimEvent(f"flush(win={self.win_id},o={origin},t={target})")
            state.flush_waiters.setdefault((origin, target), []).append(ev)
            ev.wait(self.ctx.proc)

    def fence(self) -> None:
        """MPI_WIN_FENCE (active target): flush + barrier."""
        san = self._san
        if san is not None:
            # The window is fence-synchronized from here on: accesses in
            # fence epochs are legal without passive-target locks.
            san.fence_windows.add(self.win_id)
        self.flush_all()
        self.comm.barrier()

    def free(self) -> None:
        """MPI_WIN_FREE (collective): release the modeled window memory."""
        self.flush_all()
        self.comm.barrier()
        if self.state.dynamic:
            for base in list(self.state.regions[self.rank]):
                self.detach(base)
        else:
            buf = self.state.buffers[self.rank]
            assert buf is not None
            self.ctx.memory.free(
                self.ctx.rank,
                f"mpi/win{self.win_id}",
                buf.nbytes,
            )
        if self.rank == 0:
            self.state.freed = True
        self.comm.barrier()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Window id={self.win_id} rank={self.rank}/{self.group_size}>"


def win_allocate(
    comm: "Comm",
    *,
    nbytes: int | None = None,
    shape: tuple[int, ...] | int | None = None,
    dtype=np.float64,
    memory_model: str = "unified",
) -> Window:
    """MPI_WIN_ALLOCATE: collective creation of a window over ``comm``.

    Pass either ``nbytes`` (window dtype becomes uint8) or ``shape`` +
    ``dtype``. Every rank gets a same-sized segment (CAF coarrays are
    symmetric, and MPI_WIN_ALLOCATE commonly allocates aligned symmetric
    segments — the optimization opportunity the paper cites in §3.1).
    ``memory_model`` picks the MPI-3 "unified" model (default) or the
    MPI-2-style "separate" model requiring :meth:`Window.sync`.
    """
    if (nbytes is None) == (shape is None):
        raise MpiError("pass exactly one of nbytes= or shape=")
    if memory_model not in ("unified", "separate"):
        raise MpiError(f"memory_model must be unified|separate, got {memory_model!r}")
    if nbytes is not None:
        count, dt = int(nbytes), np.dtype(np.uint8)
    else:
        count = int(np.prod(shape))
        dt = np.dtype(dtype)
    if count < 0:
        raise MpiError(f"negative window size {count}")

    def build(win_id: int) -> _WindowState:
        buffers = [np.zeros(count, dt) for _ in range(comm.size)]
        state = _WindowState(
            tuple(comm.state.group), buffers, win_id, memory_model=memory_model
        )
        if memory_model == "separate":
            state.private_copies = [np.zeros(count, dt) for _ in range(comm.size)]
            state.rma_dirty_mask = [
                np.zeros(count, bool) for _ in range(comm.size)
            ]
        return state

    win = _create_window(comm, build)
    comm.ctx.memory.alloc(
        comm.ctx.rank, f"mpi/win{win.win_id}", count * dt.itemsize
    )
    return win


def win_allocate_shared(
    comm: "Comm",
    *,
    shape: tuple[int, ...] | int,
    dtype=np.float64,
) -> Window:
    """MPI_WIN_ALLOCATE_SHARED: one contiguous allocation across the group
    (all members must share a node); segments are views into it, and
    :meth:`Window.shared_query` grants direct load/store access to peers'
    segments (§2.2)."""
    spec = comm.ctx.spec
    nodes = {spec.node_of(w) for w in comm.state.group}
    if len(nodes) > 1:
        raise MpiError(
            "win_allocate_shared requires all ranks on one shared-memory node"
        )
    count = int(np.prod(shape))
    dt = np.dtype(dtype)
    if count <= 0:
        raise MpiError(f"shared window size must be positive, got {count}")

    def build(win_id: int) -> _WindowState:
        block = np.zeros(count * comm.size, dt)
        buffers = [block[r * count : (r + 1) * count] for r in range(comm.size)]
        return _WindowState(
            tuple(comm.state.group), buffers, win_id, shared=True
        )

    win = _create_window(comm, build)
    comm.ctx.memory.alloc(
        comm.ctx.rank, f"mpi/win{win.win_id}", count * dt.itemsize
    )
    return win


def win_create_dynamic(comm: "Comm", *, dtype=np.uint8) -> Window:
    """MPI_WIN_CREATE_DYNAMIC: a window without memory; ranks expose
    regions later with :meth:`Window.attach` and address them by the
    returned displacement (§2.2, §3.1's remote-reference discussion)."""

    def build(win_id: int) -> _WindowState:
        state = _WindowState(
            tuple(comm.state.group), [None] * comm.size, win_id, dynamic=True
        )
        state.dtype = np.dtype(dtype)
        return state

    return _create_window(comm, build)


def _create_window(comm: "Comm", build) -> Window:
    """Collective window-creation skeleton (board + two barriers)."""
    world = comm.state.world
    # Per-rank allocation sequence number on this communicator: collectives
    # are called in the same order on every rank, so these agree.
    counter_key = (comm.state.context_id, comm.rank)
    seq = world._win_counter.get(counter_key, 0)
    world._win_counter[counter_key] = seq + 1
    board_key = (comm.state.context_id, seq)
    comm.barrier()
    # The first rank out of the barrier builds the shared state; everyone
    # else picks it up after the second barrier.
    if board_key not in world._win_boards:
        world._win_boards[board_key] = build(next(_win_ids))
    state = world._win_boards[board_key]
    comm.barrier()
    return Window(state, comm)
