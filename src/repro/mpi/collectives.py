"""Collective algorithms, modeled after the tuned MPICH implementations.

These run SPMD — every rank executes its side of the algorithm on its own
simulated thread using the communicator's *collective* matching context —
so their cost emerges from real message traffic through the fabric. This
matters for the paper's FFT result: ``MPI_ALLTOALL`` here uses a pairwise
exchange schedule (no incast hotspot), while CAF-GASNet's hand-rolled
all-to-all (see :mod:`repro.gasnet.collectives`) blasts puts at every
target and suffers delivery-side contention.

All buffers are contiguous NumPy arrays; reductions assume commutative ops
(all predefined ops here are commutative).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.mpi.constants import SUM, Op
from repro.sim import irhook as _irhook
from repro.util.errors import MpiError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpi.comm import Comm


def _enter(comm: "Comm") -> int:
    """Charge the per-call software overhead; returns this collective's tag."""
    _irhook.annotate(_irhook.CK_PARAM, _irhook.F_MPI_COLL)
    comm.ctx.proc.sleep(comm.ctx.spec.mpi_coll_overhead)
    return comm._next_coll_tag()


def _charge_reduce_flops(comm: "Comm", nelems: int) -> None:
    # One combine per element; charged as virtual compute.
    _irhook.annotate(_irhook.CK_FLOPS, nelems)
    comm.ctx.proc.sleep(comm.ctx.spec.flops_time(nelems))


def _check_same_shape(a: np.ndarray, b: np.ndarray, what: str) -> None:
    if a.shape != b.shape or a.dtype != b.dtype:
        raise MpiError(
            f"{what}: send {a.dtype}{a.shape} and recv {b.dtype}{b.shape} differ"
        )


def barrier(comm: "Comm") -> None:
    """Dissemination barrier: ceil(log2(P)) rounds of zero-byte messages."""
    tag = _enter(comm)
    rank, size = comm.rank, comm.size
    empty = np.empty(0, np.uint8)
    k = 1
    while k < size:
        dst = (rank + k) % size
        src = (rank - k) % size
        comm._coll_sendrecv(empty, dst, np.empty(0, np.uint8), src, tag)
        k <<= 1


def bcast(comm: "Comm", buf, root: int = 0) -> None:
    """Binomial-tree broadcast (MPICH short-message algorithm)."""
    tag = _enter(comm)
    arr = np.asarray(buf)
    rank, size = comm.rank, comm.size
    if size == 1:
        return
    vr = (rank - root) % size
    mask = 1
    while mask < size:
        if vr & mask:
            src = ((vr - mask) + root) % size
            comm._coll_recv(arr, src, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < size:
            dst = ((vr + mask) + root) % size
            comm._coll_send(arr, dst, tag)
        mask >>= 1


def reduce(comm: "Comm", sendbuf, recvbuf, op: Op | None = None, root: int = 0) -> None:
    """Binomial-tree reduction toward ``root`` (commutative ops)."""
    op = op or SUM
    tag = _enter(comm)
    send = np.asarray(sendbuf)
    rank, size = comm.rank, comm.size
    acc = send.copy()
    if size > 1:
        vr = (rank - root) % size
        tmp = np.empty_like(acc)
        mask = 1
        while mask < size:
            if vr & mask == 0:
                partner_vr = vr | mask
                if partner_vr < size:
                    src = (partner_vr + root) % size
                    comm._coll_recv(tmp, src, tag)
                    acc = op(acc, tmp)
                    _charge_reduce_flops(comm, acc.size)
            else:
                dst = ((vr - mask) + root) % size
                comm._coll_send(acc, dst, tag)
                break
            mask <<= 1
    if rank == root:
        recv = np.asarray(recvbuf)
        _check_same_shape(send, recv, "reduce")
        recv[...] = acc


def allreduce(comm: "Comm", sendbuf, recvbuf, op: Op | None = None) -> None:
    """Recursive doubling for power-of-two sizes; reduce+bcast otherwise."""
    op = op or SUM
    send = np.asarray(sendbuf)
    recv = np.asarray(recvbuf)
    _check_same_shape(send, recv, "allreduce")
    size = comm.size
    if size & (size - 1) == 0 and size > 1:
        tag = _enter(comm)
        acc = send.copy()
        tmp = np.empty_like(acc)
        mask = 1
        while mask < size:
            partner = comm.rank ^ mask
            comm._coll_sendrecv(acc, partner, tmp, partner, tag)
            acc = op(acc, tmp)
            _charge_reduce_flops(comm, acc.size)
            mask <<= 1
        recv[...] = acc
    else:
        reduce(comm, send, recv, op, root=0)
        bcast(comm, recv, root=0)


#: MPICH-style algorithm selection for ``alltoall``: below this per-block
#: payload (and at or above ``_BRUCK_MIN_PROCS`` ranks) the latency term
#: dominates and Bruck's ceil(log2 P) aggregated rounds beat the pairwise
#: exchange's P-1 rounds. The thresholds keep every existing small-scale
#: run (and its golden digests) on the pairwise path.
_BRUCK_MAX_BLOCK_BYTES = 256
_BRUCK_MIN_PROCS = 32


def _alltoall_bruck(comm: "Comm", send: np.ndarray, recv: np.ndarray, tag: int) -> None:
    """Bruck's algorithm: the MPICH short-message all-to-all.

    Three phases: a local rotation (block ``i`` moves to slot
    ``(i - rank) mod P``), ``ceil(log2 P)`` exchange rounds in which round
    ``k`` ships every slot whose index has bit ``2^k`` set to
    ``rank + 2^k`` (aggregated into one message), and a final inverse
    rotation into the receive buffer. Message count per rank drops from
    ``P - 1`` to ``ceil(log2 P)``, which is what makes 4096-rank FFT
    transposes simulable — and is the real reason MPICH switches
    algorithms at this scale.
    """
    rank, size = comm.rank, comm.size
    spec = comm.ctx.spec
    flat = np.ascontiguousarray(send).view(np.uint8).reshape(size, -1)
    # Phase 1: rotate so tmp[i] holds the block destined to rank+i.
    tmp = flat[(np.arange(size) + rank) % size].copy()
    _irhook.annotate(_irhook.CK_COPY, tmp.nbytes)
    comm.ctx.proc.sleep(spec.copy_time(tmp.nbytes))
    # Phase 2: log-round aggregated exchanges.
    pof2 = 1
    while pof2 < size:
        dst = (rank + pof2) % size
        src = (rank - pof2) % size
        sel = np.nonzero(np.arange(size) & pof2)[0]
        outgoing = np.ascontiguousarray(tmp[sel])
        incoming = np.empty_like(outgoing)
        _irhook.annotate(_irhook.CK_COPY, outgoing.nbytes)
        comm.ctx.proc.sleep(spec.copy_time(outgoing.nbytes))  # pack
        comm._coll_sendrecv(outgoing, dst, incoming, src, tag)
        tmp[sel] = incoming  # unpack into the same slots
        _irhook.annotate(_irhook.CK_COPY, incoming.nbytes)
        comm.ctx.proc.sleep(spec.copy_time(incoming.nbytes))
        pof2 <<= 1
    # Phase 3: tmp[i] now holds the block from rank-i; inverse-rotate it
    # into place.
    rflat = recv.view(np.uint8).reshape(size, -1)
    rflat[(rank - np.arange(size)) % size] = tmp
    _irhook.annotate(_irhook.CK_COPY, tmp.nbytes)
    comm.ctx.proc.sleep(spec.copy_time(tmp.nbytes))


def alltoall(comm: "Comm", sendbuf, recvbuf) -> None:
    """All-to-all with MPICH's algorithm selection.

    ``sendbuf``/``recvbuf`` have shape ``(P, ...)``: row ``i`` goes to /
    comes from rank ``i``. Short blocks at scale take Bruck's log-round
    algorithm (:func:`_alltoall_bruck`); everything else the pairwise
    exchange (MPICH's long-message algorithm).
    """
    tag = _enter(comm)
    send = np.asarray(sendbuf)
    recv = np.asarray(recvbuf)
    _check_same_shape(send, recv, "alltoall")
    rank, size = comm.rank, comm.size
    if send.shape[0] != size:
        raise MpiError(f"alltoall buffers must have leading dimension {size}")
    if (
        size >= _BRUCK_MIN_PROCS
        and send[rank].nbytes <= _BRUCK_MAX_BLOCK_BYTES
        and recv.flags.c_contiguous
    ):
        _alltoall_bruck(comm, send, recv, tag)
        return
    recv[rank] = send[rank]
    _irhook.annotate(_irhook.CK_COPY, send[rank].nbytes)
    comm.ctx.proc.sleep(comm.ctx.spec.copy_time(send[rank].nbytes))
    pow2 = size & (size - 1) == 0
    for i in range(1, size):
        if pow2:
            dst = src = rank ^ i
        else:
            dst = (rank + i) % size
            src = (rank - i) % size
        comm._coll_sendrecv(
            np.ascontiguousarray(send[dst]), dst, recv[src], src, tag
        )


def alltoallv(comm: "Comm", sendchunks, recvchunks) -> None:
    """Vector all-to-all: per-peer chunks of independent sizes.

    ``sendchunks[i]`` is sent to rank ``i``; ``recvchunks[i]`` receives from
    rank ``i``. Chunks may be None for empty exchanges.
    """
    tag = _enter(comm)
    rank, size = comm.rank, comm.size
    if len(sendchunks) != size or len(recvchunks) != size:
        raise MpiError(f"alltoallv chunk lists must have length {size}")
    empty = np.empty(0, np.uint8)

    def chunk(seq, i):
        return empty if seq[i] is None else np.asarray(seq[i])

    if recvchunks[rank] is not None and sendchunks[rank] is not None:
        np.asarray(recvchunks[rank])[...] = np.asarray(sendchunks[rank])
        _irhook.annotate(_irhook.CK_COPY, chunk(sendchunks, rank).nbytes)
        comm.ctx.proc.sleep(comm.ctx.spec.copy_time(chunk(sendchunks, rank).nbytes))
    for i in range(1, size):
        dst = (rank + i) % size
        src = (rank - i) % size
        comm._coll_sendrecv(
            np.ascontiguousarray(chunk(sendchunks, dst)), dst, chunk(recvchunks, src), src, tag
        )


def allgather(comm: "Comm", sendbuf, recvbuf) -> None:
    """Ring allgather (bandwidth-optimal): P-1 neighbor forwarding steps."""
    tag = _enter(comm)
    send = np.asarray(sendbuf)
    recv = np.asarray(recvbuf)
    rank, size = comm.rank, comm.size
    if recv.shape[0] != size:
        raise MpiError(f"allgather recvbuf must have leading dimension {size}")
    recv[rank] = send
    _irhook.annotate(_irhook.CK_COPY, send.nbytes)
    comm.ctx.proc.sleep(comm.ctx.spec.copy_time(send.nbytes))
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        comm._coll_sendrecv(
            np.ascontiguousarray(recv[send_block]), right, recv[recv_block], left, tag
        )


def gather(comm: "Comm", sendbuf, recvbuf, root: int = 0) -> None:
    """Linear gather to root (fine at simulated scales)."""
    tag = _enter(comm)
    send = np.asarray(sendbuf)
    rank, size = comm.rank, comm.size
    if rank == root:
        recv = np.asarray(recvbuf)
        if recv.shape[0] != size:
            raise MpiError(f"gather recvbuf must have leading dimension {size}")
        reqs = []
        for src in range(size):
            if src == root:
                recv[root] = send
            else:
                reqs.append(comm._coll_irecv(recv[src], src, tag))
        for req in reqs:
            req.wait()
    else:
        comm._coll_send(send, root, tag)


def scatter(comm: "Comm", sendbuf, recvbuf, root: int = 0) -> None:
    """Linear scatter from root."""
    tag = _enter(comm)
    recv = np.asarray(recvbuf)
    rank, size = comm.rank, comm.size
    if rank == root:
        send = np.asarray(sendbuf)
        if send.shape[0] != size:
            raise MpiError(f"scatter sendbuf must have leading dimension {size}")
        reqs = []
        for dst in range(size):
            if dst == root:
                recv[...] = send[root]
            else:
                reqs.append(comm._coll_isend(np.ascontiguousarray(send[dst]), dst, tag))
        for req in reqs:
            req.wait()
    else:
        comm._coll_recv(recv, root, tag)


def reduce_scatter_block(comm: "Comm", sendbuf, recvbuf, op: Op | None = None) -> None:
    """Reduce a (P, ...) buffer then scatter row i to rank i."""
    send = np.asarray(sendbuf)
    recv = np.asarray(recvbuf)
    if send.shape[0] != comm.size:
        raise MpiError(
            f"reduce_scatter_block sendbuf must have leading dimension {comm.size}"
        )
    full = np.empty_like(send)
    reduce(comm, send, full, op, root=0)
    scatter(comm, full, recv, root=0)
