"""MPI constants: wildcards and predefined reduction/accumulate operations."""

from __future__ import annotations

import numpy as np

ANY_SOURCE = -1
ANY_TAG = -1

#: Upper bound on user tags; internal traffic uses tags above this.
TAG_UB = 1 << 20


class Op:
    """A predefined reduction / accumulate operation.

    ``fn(acc, operand)`` combines arrays elementwise and returns the result
    (it must not modify ``operand``).
    """

    def __init__(self, name: str, fn, *, commutative: bool = True):
        self.name = name
        self.fn = fn
        self.commutative = commutative

    def __call__(self, acc: np.ndarray, operand: np.ndarray) -> np.ndarray:
        return self.fn(acc, operand)

    def __repr__(self) -> str:
        return f"<MPI.Op {self.name}>"


SUM = Op("SUM", lambda a, b: a + b)
PROD = Op("PROD", lambda a, b: a * b)
MAX = Op("MAX", np.maximum)
MIN = Op("MIN", np.minimum)
LAND = Op("LAND", np.logical_and)
LOR = Op("LOR", np.logical_or)
LXOR = Op("LXOR", np.logical_xor)
BAND = Op("BAND", np.bitwise_and)
BOR = Op("BOR", np.bitwise_or)
BXOR = Op("BXOR", np.bitwise_xor)
#: Accumulate-only: overwrite the target (MPI_REPLACE).
REPLACE = Op("REPLACE", lambda a, b: b)
#: Accumulate-only: leave the target unchanged (MPI_NO_OP; used by
#: MPI_GET_ACCUMULATE / MPI_FETCH_AND_OP to implement pure fetches).
NO_OP = Op("NO_OP", lambda a, b: a)
