"""Figure 3: RandomAccess on Fusion.

Paper shape: CAF-GASNet beats CAF-MPI by a small constant factor up to 64
cores; GASNet's SRQ activates at 128 cores and drops its performance;
CAF-GASNet-NOSRQ tracks CAF-MPI again.
"""

from __future__ import annotations

from repro.experiments._perf import ra_figure
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION

EXP_ID = "fig03"


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    # The SRQ threshold scales down with the sweep so the drop is visible.
    spec = FUSION.with_overrides(gasnet_srq_threshold=32)
    procs = [4, 8, 16, 32] if scale == "quick" else [4, 8, 16, 32, 64]
    result = ra_figure(
        EXP_ID,
        spec,
        procs,
        include_nosrq=True,
        table_bits=9,
        updates_per_image=1024 if scale == "quick" else 2048,
        batches=8,
    )
    result.notes = (
        "SRQ threshold rescaled to 32 procs (paper: 128 of 2048). Expected "
        "shape: GASNet ahead below the threshold, dropping past it; NOSRQ "
        "restores parity with CAF-MPI."
    )
    return result
