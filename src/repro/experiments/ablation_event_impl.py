"""Ablation (§3.4): the two candidate event implementations under CAF-MPI.

The paper picked send/recv (``MPI_ISEND`` notify + blocking-receive wait)
over one-sided atomics (``MPI_FETCH_AND_OP`` notify + busy-wait with
``MPI_COMPARE_AND_SWAP``), arguing two-sided routines were better tuned
and fit the notify/wait model naturally. This ablation runs an
event-heavy ping-pong and RandomAccess under both.
"""

from __future__ import annotations

from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION

EXP_ID = "abl_event"
TITLE = "CAF-MPI event mechanism: send/recv vs one-sided atomics (§3.4)"


def _pingpong(img, rounds=200):
    ev = img.allocate_events(1)
    other = 1 - img.rank
    t0 = img.now
    for i in range(rounds):
        if (i % 2) == img.rank:
            ev.notify(other)
        else:
            ev.wait()
    img.sync_all()
    return img.now - t0


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    rounds = 100 if scale == "quick" else 400
    nprocs_ra = 8 if scale == "quick" else 16
    rows = []
    findings = {}
    for label, impl in (("send/recv (paper)", "sendrecv"), ("atomics+busy-wait", "atomics")):
        options = {"event_impl": impl}
        pp = run_caf(
            _pingpong, 2, FUSION, backend="mpi", backend_options=options, rounds=rounds
        )
        ra = run_caf(
            run_randomaccess,
            nprocs_ra,
            FUSION,
            backend="mpi",
            backend_options=options,
            table_bits_per_image=8,
            updates_per_image=512,
            batches=8,
        )
        pingpong_us = pp.results[0] / rounds * 1e6
        gups = ra.results[0].gups
        rows.append([label, pingpong_us, gups])
        findings[impl] = {"pingpong_us": pingpong_us, "gups": gups}
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["event implementation", "ping-pong (us/round)", "RandomAccess GUPS"],
        rows=rows,
        notes=(
            "Both are functional; atomics pay the heavier RMA-atomic path "
            "plus busy-wait polling, supporting the paper's choice."
        ),
        findings=findings,
    )
