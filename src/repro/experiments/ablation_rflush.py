"""Ablation (§5): MPI_WIN_RFLUSH, implemented and measured.

The paper's future-work list asks for a request-based remote-completion
primitive so ``event_notify`` need not pay the blocking, linear-in-P
``MPI_WIN_FLUSH_ALL`` walk. This repository *implements* the proposal
(:meth:`repro.mpi.window.Window.rflush_all`: constant software cost,
request-based completion) and a CAF-MPI backend mode that uses it
(``backend_options={"use_rflush": True}``). The ablation reruns
RandomAccess under both completion mechanisms.
"""

from __future__ import annotations

from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION

EXP_ID = "abl_rflush"
TITLE = "RandomAccess under CAF-MPI: blocking FLUSH_ALL vs MPI_WIN_RFLUSH"


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    proc_counts = [8, 16] if scale == "quick" else [8, 16, 32, 64]
    rows = []
    findings = {"procs": list(proc_counts), "stock": [], "rflush": []}
    for p in proc_counts:
        gups = {}
        notify = {}
        for label, options in (
            ("stock", None),
            ("rflush", {"use_rflush": True}),
        ):
            result = run_caf(
                run_randomaccess,
                p,
                FUSION,
                backend="mpi",
                backend_options=options,
                table_bits_per_image=9,
                updates_per_image=1024,
                batches=8,
            )
            gups[label] = result.results[0].gups
            notify[label] = result.profiler.mean("event_notify")
            findings[label].append(gups[label])
        rows.append(
            [p, gups["stock"], gups["rflush"], gups["rflush"] / gups["stock"],
             notify["stock"], notify["rflush"]]
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=[
            "procs",
            "stock GUPS",
            "RFLUSH GUPS",
            "speedup",
            "stock notify (s)",
            "RFLUSH notify (s)",
        ],
        rows=rows,
        notes=(
            "The speedup grows with process count, quantifying the paper's "
            "§5/§7 argument for standardizing MPI_WIN_RFLUSH. Unlike a "
            "parameter study, this runs the actual request-based primitive."
        ),
        findings=findings,
    )
