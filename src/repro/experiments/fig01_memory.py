"""Figure 1: per-process memory when initializing GASNet, MPI, or both.

The paper measured (16/64/256 processes): GASNet-only 26/34/39 MB,
MPI-only 107/109/115 MB, duplicate runtimes 133/143/154 MB.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, check_scale
from repro.gasnet.core import GasnetWorld
from repro.mpi.world import MpiWorld
from repro.platforms import FUSION
from repro.sim.cluster import Cluster

EXP_ID = "fig01"
TITLE = "Memory usage with one or both runtimes (paper Fig. 1)"

PAPER = {  # procs -> (gasnet_only, mpi_only, duplicate) in MB
    16: (26.0, 107.0, 133.0),
    64: (34.0, 109.0, 143.0),
    256: (39.0, 115.0, 154.0),
}

_SEGMENT = 1 << 16  # tiny segment: Fig. 1 measures runtime state, not user data


def _measure(nranks: int, init_gasnet: bool, init_mpi: bool) -> float:
    cluster = Cluster(nranks, FUSION, seed=1)

    def program(ctx):
        if init_gasnet:
            GasnetWorld.get(ctx.cluster).attach(ctx, _SEGMENT)
        if init_mpi:
            MpiWorld.get(ctx.cluster).init(ctx)
        gasnet_mb = ctx.memory.rank_mb(ctx.rank, prefix="gasnet/base") + ctx.memory.rank_mb(
            ctx.rank, prefix="gasnet/rbuf"
        )
        mpi_mb = ctx.memory.rank_mb(ctx.rank, prefix="mpi/")
        return gasnet_mb + mpi_mb

    results = cluster.run(program)
    return max(results)


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    proc_counts = [16, 64] if scale == "quick" else [16, 64, 256]
    rows = []
    findings: dict[str, float] = {}
    for p in proc_counts:
        gasnet_only = _measure(p, True, False)
        mpi_only = _measure(p, False, True)
        duplicate = _measure(p, True, True)
        paper = PAPER[p]
        rows.append(
            [p, gasnet_only, mpi_only, duplicate, paper[0], paper[1], paper[2]]
        )
        findings[f"duplicate_{p}"] = duplicate
        findings[f"gasnet_{p}"] = gasnet_only
        findings[f"mpi_{p}"] = mpi_only
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=[
            "procs",
            "GASNet-only (MB)",
            "MPI-only (MB)",
            "duplicate (MB)",
            "paper GASNet",
            "paper MPI",
            "paper dup",
        ],
        rows=rows,
        notes=(
            "Duplicate runtimes waste the sum of both footprints, growing "
            "with process count — the paper's motivation for a single "
            "interoperable runtime."
        ),
        findings=findings,
    )
