"""Table 1: experimental platforms and system characteristics."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import EDISON, FUSION, MIRA

EXP_ID = "table1"
TITLE = "Experimental platforms (paper Table 1) and modeled parameters"

#: The paper's Table 1 rows (documented facts about the real machines).
PAPER_ROWS = {
    "fusion": ("Cluster (Fusion)", 320, "2 x 4", "36GB", "InfiniBand QDR", "MVAPICH2-1.9"),
    "edison": ("Cray XC30 (Edison)", 5200, "2 x 12", "64GB", "Cray Aries", "CRAY-MPICH-6.0.2"),
    "mira": ("IBM BG/Q (Mira)", 49152, "16", "16GB", "5D torus", "MPICH-on-PAMI"),
}


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    headers = [
        "system",
        "nodes",
        "cores/node",
        "mem/node",
        "interconnect",
        "MPI",
        "model latency (us)",
        "model bw (GB/s)",
        "RMA over send/recv",
        "SRQ threshold",
    ]
    rows = []
    for spec in (FUSION, EDISON, MIRA):
        name, nodes, cores, mem, net, mpi = PAPER_ROWS[spec.name]
        rows.append(
            [
                name,
                nodes,
                cores,
                mem,
                net,
                mpi,
                spec.latency * 1e6,
                spec.bandwidth / 1e9,
                spec.mpi_rma_over_sendrecv,
                spec.gasnet_srq_threshold or "-",
            ]
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        notes="Model columns are the simulator's calibrated parameters.",
        findings={"platforms": [s.name for s in (FUSION, EDISON, MIRA)]},
    )
