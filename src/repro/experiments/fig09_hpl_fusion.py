"""Figure 9: HPL on Fusion — compute-bound, runtimes indistinguishable."""

from __future__ import annotations

from repro.experiments._perf import hpl_figure
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION

EXP_ID = "fig09"


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    procs = [2, 4, 8] if scale == "quick" else [2, 4, 8, 16]

    def n_for(p: int) -> int:
        return 64 * p  # weak scaling in columns

    result = hpl_figure(EXP_ID, FUSION, procs, n_for_procs=n_for)
    result.notes = (
        "Expected shape: the CAF-MPI and CAF-GASNet curves overlap (HPL is "
        "dominated by DGEMM flops, not the communication substrate)."
    )
    return result
