"""Shared builders for the application performance figures (3, 5-7, 9-12).

Each builder sweeps process counts on one platform, runs the application
under both runtimes (plus variants), and produces the same series the
paper plots: CAF-MPI, CAF-GASNet, (CAF-GASNet-NOSRQ where relevant) and
IDEAL-SCALE.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.apps.cgpop import run_cgpop
from repro.apps.fft import run_fft
from repro.apps.hpl import run_hpl
from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf
from repro.experiments.common import ExperimentResult, ideal_scale
from repro.sim.network import MachineSpec


def ra_figure(
    exp_id: str,
    spec: MachineSpec,
    procs: Sequence[int],
    *,
    include_nosrq: bool,
    table_bits: int = 9,
    updates_per_image: int = 1024,
    batches: int = 8,
) -> ExperimentResult:
    """RandomAccess GUPS vs process count (Figures 3 and 5)."""
    variants: list[tuple[str, MachineSpec, str]] = [
        ("CAF-MPI", spec, "mpi"),
        ("CAF-GASNet", spec, "gasnet"),
    ]
    if include_nosrq:
        variants.append(
            ("CAF-GASNet-NOSRQ", spec.with_overrides(gasnet_srq_threshold=None), "gasnet")
        )
    series: dict[str, list[float]] = {}
    for label, variant_spec, backend in variants:
        series[label] = [
            run_caf(
                run_randomaccess,
                p,
                variant_spec,
                backend=backend,
                table_bits_per_image=table_bits,
                updates_per_image=updates_per_image,
                batches=batches,
            ).results[0].gups
            for p in procs
        ]
    series["IDEAL-SCALE"] = ideal_scale(procs, series["CAF-MPI"][0])
    headers = ["procs", *series.keys()]
    rows = [
        [p, *[series[label][i] for label in series]] for i, p in enumerate(procs)
    ]
    findings = {label: vals for label, vals in series.items()}
    findings["procs"] = list(procs)
    return ExperimentResult(
        exp_id=exp_id,
        title=f"RandomAccess GUPS on {spec.name} (higher is better)",
        headers=headers,
        rows=rows,
        findings=findings,
    )


def fft_figure(
    exp_id: str,
    spec: MachineSpec,
    procs: Sequence[int],
    *,
    m_for_procs,
) -> ExperimentResult:
    """FFT GFlops vs process count (Figures 6 and 7)."""
    series: dict[str, list[float]] = {}
    for label, backend in (("CAF-MPI", "mpi"), ("CAF-GASNet", "gasnet")):
        series[label] = [
            run_caf(run_fft, p, spec, backend=backend, m=m_for_procs(p))
            .results[0]
            .gflops
            for p in procs
        ]
    series["IDEAL-SCALE"] = ideal_scale(procs, series["CAF-MPI"][0])
    headers = ["procs", *series.keys()]
    rows = [[p, *[series[s][i] for s in series]] for i, p in enumerate(procs)]
    findings = dict(series)
    findings["procs"] = list(procs)
    return ExperimentResult(
        exp_id=exp_id,
        title=f"FFT GFlop/s on {spec.name} (higher is better)",
        headers=headers,
        rows=rows,
        findings=findings,
    )


def hpl_figure(
    exp_id: str,
    spec: MachineSpec,
    procs: Sequence[int],
    *,
    n_for_procs,
    block: int = 16,
) -> ExperimentResult:
    """HPL TFlops vs process count (Figures 9 and 10).

    The paper's N is O(100k); at simulation scale we recreate the
    compute-bound regime with a slowed model flop rate.
    """
    hpl_spec = spec.with_overrides(flops_per_sec=spec.flops_per_sec / 40.0)
    series: dict[str, list[float]] = {}
    for label, backend in (("CAF-MPI", "mpi"), ("CAF-GASNet", "gasnet")):
        series[label] = [
            run_caf(
                run_hpl, p, hpl_spec, backend=backend, n=n_for_procs(p), block=block
            ).results[0].tflops
            for p in procs
        ]
    series["IDEAL-SCALE"] = ideal_scale(procs, series["CAF-MPI"][0])
    headers = ["procs", *series.keys()]
    rows = [[p, *[series[s][i] for s in series]] for i, p in enumerate(procs)]
    findings = dict(series)
    findings["procs"] = list(procs)
    return ExperimentResult(
        exp_id=exp_id,
        title=f"HPL TFlop/s on {spec.name} (higher is better)",
        headers=headers,
        rows=rows,
        findings=findings,
    )


def cgpop_figure(
    exp_id: str,
    spec: MachineSpec,
    procs: Sequence[int],
    *,
    ny: int,
    nx: int,
    max_iter: int = 120,
) -> ExperimentResult:
    """CGPOP execution time vs process count (Figures 11 and 12)."""
    series: dict[str, list[float]] = {}
    for label, backend, mode in (
        ("CAF-MPI (PUSH)", "mpi", "push"),
        ("CAF-MPI (PULL)", "mpi", "pull"),
        ("CAF-GASNet (PUSH)", "gasnet", "push"),
        ("CAF-GASNet (PULL)", "gasnet", "pull"),
    ):
        series[label] = [
            run_caf(
                run_cgpop,
                p,
                spec,
                backend=backend,
                ny=ny,
                nx=nx,
                mode=mode,
                max_iter=max_iter,
                tol=0.0,  # fixed-iteration run: equal work at every P
            ).results[0].elapsed
            for p in procs
        ]
    headers = ["procs", *series.keys()]
    rows = [[p, *[series[s][i] for s in series]] for i, p in enumerate(procs)]
    findings = dict(series)
    findings["procs"] = list(procs)
    return ExperimentResult(
        exp_id=exp_id,
        title=f"CGPOP execution time (s) on {spec.name} (lower is better)",
        headers=headers,
        rows=rows,
        notes="All four variants should be near-indistinguishable (paper §4.4).",
        findings=findings,
    )
