"""Figure 5: RandomAccess on Edison.

Paper shape: CAF-GASNet wins throughout and scales better, because Cray
MPI implements RMA over send/recv internally (no SRQ story on Aries).
"""

from __future__ import annotations

from repro.experiments._perf import ra_figure
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import EDISON

EXP_ID = "fig05"


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    procs = [4, 8, 16, 32] if scale == "quick" else [4, 8, 16, 32, 64]
    result = ra_figure(
        EXP_ID,
        EDISON,
        procs,
        include_nosrq=False,
        table_bits=9,
        updates_per_image=1024 if scale == "quick" else 2048,
        batches=8,
    )
    result.notes = (
        "Send/recv-backed Cray RMA puts CAF-MPI behind CAF-GASNet at every "
        "scale (paper Fig. 5)."
    )
    return result
