"""Mira microbenchmarks (the paper's BG/Q source-data figure).

Paper rates at small scale: GASNet READ ~266k/s, WRITE ~210k/s, NOTIFY
~97k/s; MPI READ ~61k/s, WRITE ~51k/s, NOTIFY ~90k/s; all-to-all MPI 24k/s
vs GASNet 3.7k/s at 16 cores (MPI's advantage grows to ~60x at 4096).
"""

from __future__ import annotations

from repro.experiments._micro import micro_figure
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import MIRA

EXP_ID = "micro_mira"

PAPER = {
    "GASNet READ": 266e3,
    "GASNet WRITE": 210e3,
    "GASNet NOTIFY": 97e3,
    "MPI READ": 61e3,
    "MPI WRITE": 51e3,
    "MPI NOTIFY": 90e3,
    "MPI ALLTOALL@16": 24.1e3,
    "GASNet ALLTOALL@16": 3.7e3,
}


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    procs = [4, 16] if scale == "quick" else [4, 8, 16, 32, 64]
    return micro_figure(
        EXP_ID,
        MIRA,
        procs,
        iterations=300 if scale == "quick" else 500,
        paper_rates=PAPER,
    )
