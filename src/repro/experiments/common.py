"""Shared experiment plumbing: result records, sweeps, ideal-scale series."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.caf.program import CafRun, run_caf
from repro.sim.network import MachineSpec
from repro.util.tables import format_table

#: Named problem scales. "quick" keeps every experiment in seconds for
#: benchmarks/tests; "default" is the documented reproduction scale.
SCALES = ("quick", "default")


def check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    notes: str = ""
    #: Named scalar findings benchmarks/tests assert on.
    findings: dict[str, Any] = field(default_factory=dict)

    def render(self, precision: int = 4) -> str:
        text = format_table(
            self.headers, self.rows, title=f"[{self.exp_id}] {self.title}", precision=precision
        )
        if self.notes:
            text += "\n" + self.notes
        return text


def sweep_backends(
    app: Callable[..., Any],
    procs: Sequence[int],
    spec: MachineSpec,
    *,
    backends: Sequence[str] = ("mpi", "gasnet"),
    backend_options: dict[str, dict] | None = None,
    metric: Callable[[CafRun], float],
    app_kwargs: Callable[[int], dict] | dict | None = None,
) -> dict[str, list[float]]:
    """Run ``app`` for every (backend, nprocs) pair; returns metric series."""
    series: dict[str, list[float]] = {}
    for backend in backends:
        options = (backend_options or {}).get(backend)
        values = []
        for p in procs:
            kwargs = app_kwargs(p) if callable(app_kwargs) else dict(app_kwargs or {})
            run = run_caf(
                app, p, spec, backend=backend, backend_options=options, **kwargs
            )
            values.append(metric(run))
        series[backend] = values
    return series


def ideal_scale(procs: Sequence[int], base_value: float) -> list[float]:
    """The paper's IDEAL-SCALE series: linear scaling from the first point."""
    p0 = procs[0]
    return [base_value * p / p0 for p in procs]
