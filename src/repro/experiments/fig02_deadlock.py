"""Figure 2: the interoperability deadlock.

A CAF program where image 0 performs a coarray write and every image then
enters ``MPI_BARRIER``. If coarray writes require target-side CAF progress
(Active-Message based writes, as in some CAF implementations), image 1
never runs the handler — it is blocked inside *MPI* — and the program
deadlocks. With true one-sided writes (CAF-MPI's ``MPI_PUT`` design, or
RDMA GASNet puts) the same program completes.
"""

from __future__ import annotations

import numpy as np

from repro.caf import run_caf
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION
from repro.util.errors import DeadlockError

EXP_ID = "fig02"
TITLE = "The Figure 2 program under three runtime configurations"


def _figure2_program(img):
    co = img.allocate_coarray(4, np.float64)
    mpi = img.mpi()
    img.sync_all()
    if img.rank == 0:
        co.write(1, np.full(4, 1.0))
    mpi.COMM_WORLD.barrier()
    return float(co.local[0])


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    configs = [
        ("CAF-GASNet (AM-based writes)", "gasnet", {"am_writes": True}),
        ("CAF-GASNet (RDMA writes)", "gasnet", None),
        ("CAF-MPI (MPI_PUT writes)", "mpi", None),
    ]
    rows = []
    findings = {}
    for label, backend, options in configs:
        try:
            result = run_caf(
                _figure2_program, 2, FUSION, backend=backend, backend_options=options
            )
            outcome = "completes"
            detail = f"rank 1 sees {result.results[1]}"
        except DeadlockError as exc:
            outcome = "DEADLOCK"
            # The diagnostics must name each rank's blocking call site:
            # image 0 stuck waiting for its AM write to be acknowledged,
            # image 1 stuck inside the MPI library (the Figure 2 hazard).
            assert set(exc.blocked) == {0, 1}, exc.blocked
            assert "am_write" in exc.blocked[0], exc.blocked
            assert "wait(" in exc.blocked[1], exc.blocked
            assert exc.last_progress is not None and set(exc.last_progress) == {0, 1}
            detail = "; ".join(
                f"rank {r}: {why} (last progress t={exc.last_progress[r]:.3g})"
                for r, why in sorted(exc.blocked.items())
            )
        rows.append([label, outcome, detail])
        findings[label] = outcome
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["configuration", "outcome", "detail"],
        rows=rows,
        notes=(
            "The hazard is implementation-specific (paper §1): writes that "
            "need target involvement deadlock against MPI_BARRIER; CAF-MPI's "
            "one-sided mapping is immune."
        ),
        findings=findings,
    )
