"""Figure 6: FFT on Fusion — CAF-MPI consistently outperforms CAF-GASNet
(tuned MPI_ALLTOALL vs the hand-rolled GASNet all-to-all)."""

from __future__ import annotations

from repro.experiments._perf import fft_figure
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION

EXP_ID = "fig06"


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    spec = FUSION.with_overrides(gasnet_srq_threshold=32)
    procs = [4, 8, 16] if scale == "quick" else [4, 8, 16, 32, 64]

    def m_for(p: int) -> int:
        # Weak-ish scaling: keep per-pair chunks in the bandwidth regime.
        return 1 << 18 if p <= 8 else 1 << 20

    result = fft_figure(EXP_ID, spec, procs, m_for_procs=m_for)
    result.notes = (
        "Expected shape: CAF-MPI ahead at every scale, the gap widening "
        "once GASNet's SRQ activates (threshold rescaled to 32 procs)."
    )
    return result
