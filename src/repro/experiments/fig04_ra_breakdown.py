"""Figure 4: time decomposition of RandomAccess (Fusion).

Paper (2048 cores): CAF-MPI spends ~219 s in event_notify (the linear
MPI_WIN_FLUSH_ALL) and 256 s in event_wait; CAF-GASNet spends almost
nothing in notify (3.6 s) but 406 s in event_wait. Computation and
coarray_write are smaller and comparable.
"""

from __future__ import annotations

from repro.apps.randomaccess import run_randomaccess
from repro.caf.program import run_caf
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION

EXP_ID = "fig04"
TITLE = "RandomAccess time decomposition on fusion (mean seconds/image)"

CATEGORIES = ("computation", "coarray_write", "event_wait", "event_notify")

PAPER_2048 = {  # seconds, paper Figure 4
    "CAF-GASNet": {"computation": 46.36, "coarray_write": 53.28, "event_wait": 405.75, "event_notify": 3.60},
    "CAF-MPI": {"computation": 81.97, "coarray_write": 160.09, "event_wait": 255.74, "event_notify": 219.08},
}


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    nprocs = 16 if scale == "quick" else 32
    spec = FUSION.with_overrides(gasnet_srq_threshold=None)
    rows = []
    findings: dict[str, dict[str, float]] = {}
    for label, backend in (("CAF-GASNet", "gasnet"), ("CAF-MPI", "mpi")):
        run_result = run_caf(
            run_randomaccess,
            nprocs,
            spec,
            backend=backend,
            table_bits_per_image=9,
            updates_per_image=2048,
            batches=16,
        )
        breakdown = run_result.profiler.breakdown()
        values = {c: breakdown.get(c, 0.0) for c in CATEGORIES}
        findings[label] = values
        rows.append([label, *[values[c] for c in CATEGORIES]])
    for label, paper in PAPER_2048.items():
        rows.append(
            [f"paper {label} (2048c)", *[paper[c] for c in CATEGORIES]]
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["variant", *CATEGORIES],
        rows=rows,
        notes=(
            "Expected shape: CAF-MPI's event_notify share is large (linear "
            "FLUSH_ALL); CAF-GASNet's notify is negligible with the waiting "
            "shifted into event_wait."
        ),
        findings=findings,
    )
