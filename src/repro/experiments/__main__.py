"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                 # all, default scale
    python -m repro.experiments fig03 fig08     # a subset
    python -m repro.experiments --scale quick   # fast pass
    python -m repro.experiments --list
    python -m repro.experiments --out results/  # also write text files
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures on the simulator.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--scale", choices=["quick", "default"], default="default")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--out", type=pathlib.Path, help="directory for text outputs")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, spec in EXPERIMENTS.items():
            print(f"{exp_id:14s} {spec.summary}")
        return 0

    ids = args.ids or list(EXPERIMENTS)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    for exp_id in ids:
        spec = get_experiment(exp_id)
        t0 = time.time()
        result = spec.load()(args.scale)
        text = result.render()
        print(text)
        print(f"({exp_id} regenerated in {time.time() - t0:.1f}s wall)\n")
        if args.out:
            (args.out / f"{exp_id}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
