"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                 # all, default scale
    python -m repro.experiments fig03 fig08     # a subset
    python -m repro.experiments --scale quick   # fast pass
    python -m repro.experiments --list
    python -m repro.experiments --out results/  # also write text files
    python -m repro.experiments fig04 --metrics obs/  # per-run RunReports
    python -m repro.experiments fig04 --metrics obs/ --trace  # + traces
    python -m repro.experiments fig04 --metrics obs/ --live   # + telemetry
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures on the simulator.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--scale", choices=["quick", "default"], default="default")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--out", type=pathlib.Path, help="directory for text outputs")
    parser.add_argument(
        "--metrics", type=pathlib.Path, metavar="DIR", default=None,
        help="capture a RunReport JSON per simulated run into DIR",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="with --metrics: also capture a Chrome/Perfetto trace per run",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="with --metrics: also stream a run-NNNN.telemetry.jsonl per run",
    )
    parser.add_argument(
        "--live-interval", type=float, default=None, metavar="S",
        help="wall seconds between telemetry snapshots (default 0.5)",
    )
    parser.add_argument(
        "--record-ir", type=pathlib.Path, metavar="DIR", default=None,
        help="record an op-stream trace per simulated run into DIR "
        "(fault-injected runs are skipped)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run every simulated run under the conservative sharded "
        "dispatcher with N shards (sets REPRO_SIM_SHARDS; figures are "
        "bit-identical to the sequential dispatcher)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, spec in EXPERIMENTS.items():
            print(f"{exp_id:14s} {spec.summary}")
        return 0
    if args.trace and args.metrics is None:
        parser.error("--trace requires --metrics DIR")
    if args.live and args.metrics is None:
        parser.error("--live requires --metrics DIR")

    ids = args.ids or list(EXPERIMENTS)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    if args.shards is not None:
        if args.record_ir is not None and args.shards > 1:
            parser.error("--record-ir cannot be combined with --shards > 1")
        # The experiments never plumb engine options; the env gate is the
        # sanctioned channel (same as REPRO_SIM_FASTPATH).
        import os

        os.environ["REPRO_SIM_SHARDS"] = str(args.shards)
    if args.metrics is not None:
        # Process-wide capture: every run_caf inside the experiments emits a
        # run-NNNN.report.json without the experiment code knowing about it.
        from repro.obs import capture as obs_capture

        obs_capture.start(
            args.metrics,
            trace=args.trace,
            live=args.live,
            live_interval=args.live_interval,
        )
    if args.record_ir is not None:
        # Same capture pattern for trace recording: every (fault-free)
        # run_caf inside the experiments writes a run-NNNN trace artifact.
        from repro.ir import record as ir_record

        ir_record.start(args.record_ir)
    try:
        for exp_id in ids:
            spec = get_experiment(exp_id)
            t0 = time.time()
            result = spec.load()(args.scale)
            text = result.render()
            print(text)
            print(f"({exp_id} regenerated in {time.time() - t0:.1f}s wall)\n")
            if args.out:
                (args.out / f"{exp_id}.txt").write_text(text + "\n")
    finally:
        if args.metrics is not None:
            written = obs_capture.stop()
            print(f"captured {len(written)} artifact(s) in {args.metrics}")
        if args.record_ir is not None:
            recorded = ir_record.stop()
            print(f"recorded {len(recorded)} trace artifact(s) in {args.record_ir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
