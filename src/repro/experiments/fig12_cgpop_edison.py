"""Figure 12: CGPOP on Edison — same near-identical four variants."""

from __future__ import annotations

from repro.experiments._perf import cgpop_figure
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import EDISON

EXP_ID = "fig12"


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    procs = [2, 4, 8] if scale == "quick" else [2, 4, 8, 12, 24]
    return cgpop_figure(
        EXP_ID,
        EDISON,
        procs,
        ny=96,
        nx=48,
        max_iter=60 if scale == "quick" else 120,
    )
