"""Experiment harness: regenerates every table and figure of the paper.

Each experiment module exposes ``run(scale)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose table holds the
same rows/series the paper reports (at reduced process counts — the
simulator targets *shapes*, not absolute numbers).

Run them all::

    python -m repro.experiments            # everything, tables to stdout
    python -m repro.experiments fig03 fig08 --scale quick
    python -m repro.experiments --list
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["EXPERIMENTS", "get_experiment"]
