"""Ablation: CGPOP 1-D strip vs 2-D block domain decomposition.

The miniapp exchanges boundaries between neighboring sub-domains; strips
send two full rows per step while blocks send four smaller edges (better
surface-to-volume at scale, at the cost of strided east/west sections).
This quantifies the trade-off on the simulated fabric for both runtimes.
"""

from __future__ import annotations

from repro.apps.cgpop import run_cgpop, run_cgpop_2d
from repro.caf.program import run_caf
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION

EXP_ID = "abl_decomp"
TITLE = "CGPOP halo exchange: 1-D strips vs 2-D blocks (execution time, s)"


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    proc_counts = [4] if scale == "quick" else [4, 16]
    ny = nx = 32 if scale == "quick" else 64
    max_iter = 40 if scale == "quick" else 80
    rows = []
    findings: dict[str, dict[int, float]] = {"1d": {}, "2d": {}}
    for p in proc_counts:
        row = [p]
        for backend in ("mpi", "gasnet"):
            t1 = run_caf(
                run_cgpop, p, FUSION, backend=backend,
                ny=ny, nx=nx, tol=0.0, max_iter=max_iter,
            ).results[0].elapsed
            t2 = run_caf(
                run_cgpop_2d, p, FUSION, backend=backend,
                ny=ny, nx=nx, tol=0.0, max_iter=max_iter,
            ).results[0].elapsed
            row.extend([t1, t2, t1 / t2])
            if backend == "mpi":
                findings["1d"][p] = t1
                findings["2d"][p] = t2
        rows.append(row)
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=[
            "procs",
            "mpi 1d", "mpi 2d", "mpi 1d/2d",
            "gasnet 1d", "gasnet 2d", "gasnet 1d/2d",
        ],
        rows=rows,
        notes=(
            "At these simulated scales the 1-D strips win: 2-D pays strided "
            "east/west sections plus twice the event synchronization, while "
            "the surface-to-volume payoff needs larger P and grids than the "
            "harness sweeps. The ratio shrinking toward (and below) 1 with "
            "P shows both effects at work."
        ),
        findings=findings,
    )
