"""Figure 8: FFT time decomposition (Fusion, 256 cores in the paper).

Paper: CAF-GASNet spends 17.9 s in all-to-all vs CAF-MPI's 6.1 s, with
local computation roughly equal (7.9 vs 8.3 s) — the entire FFT gap is
the collective.
"""

from __future__ import annotations

from repro.apps.fft import run_fft
from repro.caf.program import run_caf
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION

EXP_ID = "fig08"
TITLE = "FFT time decomposition on fusion (mean seconds/image)"

PAPER_256 = {
    "CAF-GASNet": {"alltoall": 17.92, "computation": 7.94},
    "CAF-MPI": {"alltoall": 6.06, "computation": 8.31},
}


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    nprocs = 16 if scale == "quick" else 32
    m = 1 << 18 if scale == "quick" else 1 << 20
    spec = FUSION.with_overrides(gasnet_srq_threshold=nprocs)
    rows = []
    findings: dict[str, dict[str, float]] = {}
    for label, backend in (("CAF-GASNet", "gasnet"), ("CAF-MPI", "mpi")):
        run_result = run_caf(run_fft, nprocs, spec, backend=backend, m=m)
        breakdown = run_result.profiler.breakdown()
        alltoall = breakdown.get("alltoall", 0.0)
        comp = breakdown.get("computation", 0.0)
        findings[label] = {"alltoall": alltoall, "computation": comp}
        rows.append([label, alltoall, comp])
    for label, paper in PAPER_256.items():
        rows.append([f"paper {label} (256c)", paper["alltoall"], paper["computation"]])
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["variant", "alltoall", "computation"],
        rows=rows,
        notes=(
            "Expected shape: equal computation; CAF-GASNet's all-to-all "
            "several times costlier than MPI_ALLTOALL."
        ),
        findings=findings,
    )
