"""Figure 10: HPL on Edison — same compute-bound tie as Fusion."""

from __future__ import annotations

from repro.experiments._perf import hpl_figure
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import EDISON

EXP_ID = "fig10"


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    procs = [2, 4, 8] if scale == "quick" else [2, 4, 8, 16]

    def n_for(p: int) -> int:
        return 64 * p

    result = hpl_figure(EXP_ID, EDISON, procs, n_for_procs=n_for)
    result.notes = "Expected shape: overlapping curves for both runtimes."
    return result
