"""Ablation (§3.5): fast finish vs termination-detection finish.

The fast variant (FLUSH_ALL per touched window + MPI_BARRIER) is valid
only without function shipping; Yang's termination-detection variant pays
repeated SUM reductions. This quantifies the premium.
"""

from __future__ import annotations

import numpy as np

from repro.caf.program import run_caf
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION

EXP_ID = "abl_finish"
TITLE = "finish implementations: fast flush+barrier vs termination detection"


def _finish_loop(img, fast, rounds=50):
    co = img.allocate_coarray(16, np.float64)
    img.sync_all()
    t0 = img.now
    for _ in range(rounds):
        with img.finish(fast=fast):
            co.write_async((img.rank + 1) % img.nranks, np.zeros(16))
    return (img.now - t0) / rounds


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    rounds = 20 if scale == "quick" else 50
    proc_counts = [4, 8] if scale == "quick" else [4, 8, 16, 32]
    rows = []
    findings = {}
    for p in proc_counts:
        row = [p]
        for backend in ("mpi", "gasnet"):
            per_round = {}
            for fast in (True, False):
                run_result = run_caf(
                    _finish_loop, p, FUSION, backend=backend, fast=fast, rounds=rounds
                )
                per_round[fast] = max(run_result.results) * 1e6
            row.extend([per_round[True], per_round[False], per_round[False] / per_round[True]])
            findings[f"{backend}_{p}"] = per_round
        rows.append(row)
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=[
            "procs",
            "mpi fast (us)",
            "mpi TD (us)",
            "mpi TD/fast",
            "gasnet fast (us)",
            "gasnet TD (us)",
            "gasnet TD/fast",
        ],
        rows=rows,
        notes="TD must cost at least one extra reduction round per finish.",
        findings=findings,
    )
