"""Edison microbenchmarks (the paper's Cray XC30 source-data figure).

Paper rates at small scale: GASNet READ ~385k/s, WRITE ~500k/s, NOTIFY
~655k/s; MPI READ/WRITE ~207k/s (send/recv-backed RMA), NOTIFY ~700k/s;
all-to-all GASNet 24k/s > MPI 12k/s at 32 procs, converging/crossing at
larger scales.
"""

from __future__ import annotations

from repro.experiments._micro import micro_figure
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import EDISON

EXP_ID = "micro_edison"

PAPER = {
    "GASNet READ": 385e3,
    "GASNet WRITE": 500e3,
    "GASNet NOTIFY": 655e3,
    "MPI READ": 207e3,
    "MPI WRITE": 210e3,
    "MPI NOTIFY": 700e3,
    "GASNet ALLTOALL@32": 24.2e3,
    "MPI ALLTOALL@32": 12.4e3,
}


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    procs = [4, 16] if scale == "quick" else [4, 8, 16, 32, 64]
    return micro_figure(
        EXP_ID,
        EDISON,
        procs,
        iterations=300 if scale == "quick" else 500,
        paper_rates=PAPER,
    )
