"""Ablation: the eager/rendezvous threshold of the simulated MPI library.

Small messages are copied into library buffers and complete locally at
once; large ones handshake (RTS/CTS). The threshold trades copy cost
against handshake latency; this sweep shows the crossover on a ping-pong.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, check_scale
from repro.mpi.world import MpiWorld
from repro.platforms import FUSION
from repro.sim.cluster import Cluster

EXP_ID = "abl_eager"
TITLE = "Eager threshold sweep: ping-pong time per round (us)"


def _pingpong_time(threshold: int, nbytes: int, rounds: int) -> float:
    spec = FUSION.with_overrides(mpi_eager_threshold=threshold)
    cluster = Cluster(2, spec, seed=1)

    def program(ctx):
        mpi = MpiWorld.get(ctx.cluster).init(ctx)
        comm = mpi.COMM_WORLD
        buf = np.zeros(max(nbytes // 8, 1), np.float64)
        comm.barrier()
        t0 = ctx.now
        for _ in range(rounds):
            if ctx.rank == 0:
                comm.send(buf, dest=1)
                comm.recv(buf, source=1)
            else:
                comm.recv(buf, source=0)
                comm.send(buf, dest=0)
        return (ctx.now - t0) / rounds

    results = cluster.run(program)
    return results[0] * 1e6


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    rounds = 20 if scale == "quick" else 50
    thresholds = [0, 1 << 10, 1 << 13, 1 << 16]
    sizes = [256, 4096, 65536] if scale == "quick" else [256, 4096, 32768, 262144]
    rows = []
    findings = {}
    for nbytes in sizes:
        row = [nbytes]
        for threshold in thresholds:
            us = _pingpong_time(threshold, nbytes, rounds)
            row.append(us)
            findings[(nbytes, threshold)] = us
        rows.append(row)
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["msg bytes", *[f"thresh={t}" for t in thresholds]],
        rows=rows,
        notes=(
            "Eager wins for small messages (no handshake); rendezvous wins "
            "once the extra copy outweighs one round trip."
        ),
        findings={str(k): v for k, v in findings.items()},
    )
