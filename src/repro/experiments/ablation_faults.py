"""Ablation: fault injection vs the reliable-delivery transport.

The runtime the paper builds assumes a reliable interconnect; this
ablation drops that assumption. A seeded :class:`FaultPlan` makes the
simulated fabric drop a fraction of all messages, and the runtime opts
into the ack/retransmit transport (``reliable=True``). RandomAccess is
the probe because its correctness is exactly-once delivery: every update
XORs into a table, so a lost *or duplicated* landing-zone write corrupts
the final tables in a way the serial reference detects.

Measured per drop rate and backend: GUPS, the retry traffic the
transport generated, the virtual-time overhead relative to the fault-free
baseline, and whether the final tables still match the reference.
"""

from __future__ import annotations

import numpy as np

from repro.apps.randomaccess import reference_tables, run_randomaccess
from repro.caf.program import run_caf
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import FUSION
from repro.sim.faults import FaultPlan

EXP_ID = "abl_faults"
TITLE = "RandomAccess under injected message loss with reliable delivery"

_NRANKS = 8
_RA_KWARGS = dict(table_bits_per_image=9, updates_per_image=1024, batches=8)
_RA_SEED = 42  # run_randomaccess default update-stream seed
_FAULT_SEED = 2014


def _verified(run) -> bool:
    ref = reference_tables(
        _RA_SEED, _NRANKS, _RA_KWARGS["table_bits_per_image"],
        _RA_KWARGS["updates_per_image"],
    )
    tables = run.cluster._shared["ra-tables"]
    return all(np.array_equal(tables[r], ref[r]) for r in range(_NRANKS))


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    drop_rates = [0.0, 0.01] if scale == "quick" else [0.0, 0.005, 0.01, 0.02]
    rows = []
    findings = {"drop_rates": list(drop_rates)}
    for backend in ("mpi", "gasnet"):
        baseline_elapsed = None
        findings[backend] = {
            "gups": [], "retransmits": [], "dropped": [],
            "overhead": [], "verified": [],
        }
        for rate in drop_rates:
            faults = FaultPlan(seed=_FAULT_SEED, drop_rate=rate) if rate else None
            result = run_caf(
                run_randomaccess,
                _NRANKS,
                FUSION,
                backend=backend,
                faults=faults,
                reliable=rate > 0,
                **_RA_KWARGS,
            )
            if baseline_elapsed is None:
                baseline_elapsed = result.elapsed
            overhead = result.elapsed / baseline_elapsed
            rel = result.fabric.reliable
            retransmits = rel.retransmits if rel is not None else 0
            ok = _verified(result)
            gups = result.results[0].gups
            rows.append(
                [backend, rate, gups, result.fabric.dropped, retransmits,
                 overhead, "yes" if ok else "NO"]
            )
            f = findings[backend]
            f["gups"].append(gups)
            f["retransmits"].append(retransmits)
            f["dropped"].append(result.fabric.dropped)
            f["overhead"].append(overhead)
            f["verified"].append(ok)
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=[
            "backend", "drop rate", "GUPS", "msgs dropped", "retransmits",
            "time vs fault-free", "tables verified",
        ],
        rows=rows,
        notes=(
            "Every faulty configuration must still verify: the transport's "
            "sequence-number dedup plus ack/retransmit restores exactly-once "
            "delivery, at the price of the retry traffic and the timeout "
            "stalls visible in the overhead column."
        ),
        findings=findings,
    )
