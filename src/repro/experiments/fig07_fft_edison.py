"""Figure 7: FFT on Edison — same story as Fusion, no SRQ involved."""

from __future__ import annotations

from repro.experiments._perf import fft_figure
from repro.experiments.common import ExperimentResult, check_scale
from repro.platforms import EDISON

EXP_ID = "fig07"


def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    procs = [4, 8, 16] if scale == "quick" else [4, 8, 16, 32, 64]

    def m_for(p: int) -> int:
        return 1 << 18 if p <= 8 else 1 << 20

    result = fft_figure(EXP_ID, EDISON, procs, m_for_procs=m_for)
    result.notes = "Expected shape: CAF-MPI ahead of CAF-GASNet throughout."
    return result
