"""Registry mapping experiment ids to their modules (lazily imported)."""

from __future__ import annotations

import importlib
from collections.abc import Callable
from dataclasses import dataclass

from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class ExperimentSpec:
    exp_id: str
    module: str
    summary: str

    def load(self) -> Callable[[str], ExperimentResult]:
        mod = importlib.import_module(self.module)
        return mod.run


_M = "repro.experiments"

EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.exp_id: spec
    for spec in [
        ExperimentSpec("table1", f"{_M}.table1_platforms", "Platform characteristics"),
        ExperimentSpec("fig01", f"{_M}.fig01_memory", "Memory usage of dual runtimes"),
        ExperimentSpec("fig02", f"{_M}.fig02_deadlock", "Interoperability deadlock"),
        ExperimentSpec("fig03", f"{_M}.fig03_ra_fusion", "RandomAccess on Fusion"),
        ExperimentSpec("fig04", f"{_M}.fig04_ra_breakdown", "RandomAccess time decomposition"),
        ExperimentSpec("fig05", f"{_M}.fig05_ra_edison", "RandomAccess on Edison"),
        ExperimentSpec("fig06", f"{_M}.fig06_fft_fusion", "FFT on Fusion"),
        ExperimentSpec("fig07", f"{_M}.fig07_fft_edison", "FFT on Edison"),
        ExperimentSpec("fig08", f"{_M}.fig08_fft_breakdown", "FFT time decomposition"),
        ExperimentSpec("fig09", f"{_M}.fig09_hpl_fusion", "HPL on Fusion"),
        ExperimentSpec("fig10", f"{_M}.fig10_hpl_edison", "HPL on Edison"),
        ExperimentSpec("fig11", f"{_M}.fig11_cgpop_fusion", "CGPOP on Fusion"),
        ExperimentSpec("fig12", f"{_M}.fig12_cgpop_edison", "CGPOP on Edison"),
        ExperimentSpec("micro_mira", f"{_M}.micro_mira", "Mira microbenchmarks"),
        ExperimentSpec("micro_edison", f"{_M}.micro_edison", "Edison microbenchmarks"),
        ExperimentSpec("abl_event", f"{_M}.ablation_event_impl", "Event impl: send/recv vs one-sided atomics (§3.4)"),
        ExperimentSpec("abl_finish", f"{_M}.ablation_finish", "finish: fast flush+barrier vs termination detection (§3.5)"),
        ExperimentSpec("abl_rflush", f"{_M}.ablation_rflush", "Hypothetical MPI_WIN_RFLUSH / constant-cost FLUSH_ALL (§5)"),
        ExperimentSpec("abl_eager", f"{_M}.ablation_eager", "Eager/rendezvous threshold sweep"),
        ExperimentSpec("abl_decomp", f"{_M}.ablation_decomp", "CGPOP 1-D strips vs 2-D blocks"),
        ExperimentSpec("abl_faults", f"{_M}.ablation_faults", "Injected message loss vs reliable-delivery transport"),
    ]
}


def get_experiment(exp_id: str) -> ExperimentSpec:
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[exp_id]
