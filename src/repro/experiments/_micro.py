"""Shared builder for the Mira/Edison microbenchmark figures."""

from __future__ import annotations

from collections.abc import Sequence

from repro.apps.microbench import run_microbench
from repro.caf.program import run_caf
from repro.experiments.common import ExperimentResult
from repro.sim.network import MachineSpec

P2P_OPS = ("read", "write", "notify")


def micro_figure(
    exp_id: str,
    spec: MachineSpec,
    procs: Sequence[int],
    *,
    iterations: int = 200,
    paper_rates: dict[str, float] | None = None,
) -> ExperimentResult:
    """Per-op rates for both runtimes across a process sweep.

    Point-to-point rates should be roughly flat in P; all-to-all rates fall
    with P (fastest for the hand-rolled GASNet collective at scale on AM
    conduits, and for MPI everywhere on Mira).
    """
    columns: dict[str, list[float]] = {}
    for backend in ("gasnet", "mpi"):
        for op in (*P2P_OPS, "alltoall"):
            label = f"CAF-{backend.upper().replace('GASNET', 'GASNet')} {op.upper()}"
            iters = iterations if op != "alltoall" else max(iterations // 10, 10)
            columns[label] = [
                run_caf(
                    run_microbench,
                    p,
                    spec,
                    backend=backend,
                    op=op,
                    iterations=iters,
                ).results[0].ops_per_second
                for p in procs
            ]
    headers = ["procs", *columns.keys()]
    rows = [[p, *[columns[c][i] for c in columns]] for i, p in enumerate(procs)]
    notes = ""
    if paper_rates:
        notes = "paper rates (ops/s, small scale): " + ", ".join(
            f"{k}={v:.3g}" for k, v in paper_rates.items()
        )
    findings = dict(columns)
    findings["procs"] = list(procs)
    return ExperimentResult(
        exp_id=exp_id,
        title=f"Microbenchmark op rates on {spec.name} (ops/second)",
        headers=headers,
        rows=rows,
        notes=notes,
        findings=findings,
    )
