"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without catching programming errors.
"""

from __future__ import annotations


def _blocked_detail(
    blocked: dict[int, str], last_progress: dict[int, float] | None
) -> str:
    parts = []
    for r, why in sorted(blocked.items()):
        if last_progress is not None and r in last_progress:
            parts.append(f"rank {r}: {why} (last progress t={last_progress[r]:.9g})")
        else:
            parts.append(f"rank {r}: {why}")
    return "; ".join(parts)


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """All live simulated processes are blocked and no future event exists.

    Attributes
    ----------
    blocked:
        Mapping of rank -> human-readable description of the call the rank
        is blocked in (e.g. ``"event_wait(event#2)"``).
    now:
        Virtual time at which the engine detected quiescence (None for
        hand-constructed instances).
    last_progress:
        Mapping of rank -> virtual time that rank last resumed execution.
    telemetry:
        The final live-telemetry snapshot (a dict), stamped by the cluster
        when the run had a :class:`~repro.obs.live.LiveTelemetry` tap
        armed; ``None`` otherwise. Carries the progress trail — events
        executed, events/s, blocked-rank detail, shard window state — a
        hung paper-scale run dies with.
    """

    def __init__(
        self,
        blocked: dict[int, str],
        *,
        now: float | None = None,
        last_progress: dict[int, float] | None = None,
    ):
        self.blocked = dict(blocked)
        self.now = now
        self.last_progress = dict(last_progress) if last_progress else {}
        self.telemetry: dict | None = None
        detail = _blocked_detail(self.blocked, self.last_progress or None)
        at = f" at t={now:.9g}" if now is not None else ""
        super().__init__(f"deadlock{at}: all live images are blocked ({detail})")


class SimTimeoutError(SimulationError):
    """``Engine.run(deadline=...)`` hit the watchdog deadline.

    Carries the same per-rank diagnostics as :class:`DeadlockError`: which
    call each unfinished rank is blocked in, and when it last made
    progress — plus, when a live tap was armed, a final ``telemetry``
    snapshot (see :class:`DeadlockError`). Raised when injected faults
    (dropped messages, crashed images) stall the program but
    retransmission timers keep the event heap non-empty, so plain
    deadlock detection never fires.
    """

    def __init__(
        self,
        deadline: float,
        blocked: dict[int, str],
        *,
        last_progress: dict[int, float] | None = None,
    ):
        self.deadline = deadline
        self.blocked = dict(blocked)
        self.last_progress = dict(last_progress) if last_progress else {}
        self.telemetry: dict | None = None
        detail = _blocked_detail(self.blocked, self.last_progress or None)
        super().__init__(
            f"virtual-time deadline {deadline:.9g}s exceeded; "
            f"unfinished: {detail or 'none (daemon events only)'}"
        )


class MpiError(ReproError):
    """An MPI routine was invoked with invalid arguments or in a bad state."""


class MpiProcFailedError(MpiError):
    """ULFM-style MPI_ERR_PROC_FAILED: the operation touched a dead rank.

    ``failed_rank`` is the *world* rank of the failed process.
    """

    def __init__(self, failed_rank: int, message: str | None = None):
        self.failed_rank = failed_rank
        super().__init__(
            message or f"operation involves failed process (world rank {failed_rank})"
        )


class MpiRevokedError(MpiError):
    """ULFM-style MPI_ERR_REVOKED: the communicator has been revoked.

    After any rank calls ``Comm.revoke()``, every pending and future
    operation on that communicator completes with this error, so failure
    knowledge propagates to ranks that never directly touched the dead
    process.
    """

    def __init__(self, context_id: int, message: str | None = None):
        self.context_id = context_id
        super().__init__(
            message or f"communicator (context {context_id}) has been revoked"
        )


class GasnetError(ReproError):
    """A GASNet routine was invoked with invalid arguments or in a bad state."""


class GasnetProcFailedError(GasnetError):
    """A GASNet operation named a crashed node (the conduit analogue of
    ULFM's MPI_ERR_PROC_FAILED). ``failed_rank`` is the dead world rank."""

    def __init__(self, failed_rank: int, message: str | None = None):
        self.failed_rank = failed_rank
        super().__init__(message or f"rank {failed_rank} has failed (node crash)")


class CafError(ReproError):
    """A CAF runtime operation was invoked incorrectly."""


class ImageFailedError(CafError):
    """A CAF operation named an image that has crashed.

    ``failed_image`` is the world rank of the dead image.
    """

    def __init__(self, failed_image: int, message: str | None = None):
        self.failed_image = failed_image
        super().__init__(message or f"image {failed_image} has failed")


class CafTimeoutError(CafError):
    """A CAF wait with ``timeout=`` expired before its condition held."""


class ResilienceError(ReproError):
    """Checkpoint/restart or shrink-recovery machinery misused or exhausted
    (e.g. no checkpoint to resume from, or the restart budget ran out)."""
