"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """All live simulated processes are blocked and no future event exists.

    Attributes
    ----------
    blocked:
        Mapping of rank -> human-readable description of the call the rank
        is blocked in (e.g. ``"event_wait(event#2)"``).
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        detail = "; ".join(f"rank {r}: {why}" for r, why in sorted(blocked.items()))
        super().__init__(f"deadlock: all live images are blocked ({detail})")


class MpiError(ReproError):
    """An MPI routine was invoked with invalid arguments or in a bad state."""


class GasnetError(ReproError):
    """A GASNet routine was invoked with invalid arguments or in a bad state."""


class CafError(ReproError):
    """A CAF runtime operation was invoked incorrectly."""
