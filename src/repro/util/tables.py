"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows/series the paper reports; this
module renders them in aligned, monospace-friendly form.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    # Newlines would break the one-line-per-row invariant.
    return str(value).replace("\n", " ")


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    headers = [str(h).replace("\n", " ") for h in headers]
    rendered = [[_render_cell(c, precision) for c in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
