"""Deterministic random-number streams.

Every stochastic choice in the simulator and the applications draws from a
:class:`numpy.random.Generator` produced here, so a (seed, rank) pair fully
determines a run.
"""

from __future__ import annotations

import numpy as np


def rank_rng(seed: int, rank: int, stream: str = "") -> np.random.Generator:
    """Return an independent generator for ``(seed, rank, stream)``.

    Uses ``SeedSequence.spawn``-style keying so different ranks and different
    named streams on the same rank never overlap.
    """
    key = [seed & 0xFFFFFFFF, rank]
    if stream:
        # Fold the stream name into the entropy key deterministically.
        key.extend(ord(c) for c in stream)
    return np.random.default_rng(np.random.SeedSequence(key))
