"""Shared utilities: error types, deterministic RNG streams, table rendering."""

from repro.util.errors import (
    CafError,
    DeadlockError,
    MpiError,
    ReproError,
    SimulationError,
)
from repro.util.rng import rank_rng
from repro.util.tables import format_table

__all__ = [
    "CafError",
    "DeadlockError",
    "MpiError",
    "ReproError",
    "SimulationError",
    "format_table",
    "rank_rng",
]
