"""Zero-copy payload helpers shared by the communication libraries.

Every bulk transfer path (MPI RMA, p2p rendezvous, GASNet puts, CAF
coarray writes) needs the same preamble: coerce the user's buffer to a
flat, C-contiguous array of the wire dtype. Done naively that costs two
copies (``ascontiguousarray`` then a defensive ``.copy()``). These
helpers make exactly the copies the semantics require and no more:

* :func:`flatten` returns a flat view plus a *private* flag — ``True``
  when the result already owns memory the caller cannot alias (because
  a dtype/layout conversion or list-to-array coercion materialized a
  fresh array). Rendezvous-style operations, whose user contract forbids
  buffer reuse until local completion, can ship the view as-is and defer
  the only copy to delivery.
* :func:`snapshot` returns an array that is safe to retain after the
  call returns (eager sends, atomics), copying only when :func:`flatten`
  did not already produce private memory.
"""

from __future__ import annotations

import numpy as np


def flatten(data, dtype) -> tuple[np.ndarray, bool]:
    """Flat C-contiguous view of ``data`` as ``dtype``.

    Returns ``(flat, private)``; ``private`` is ``True`` when ``flat``
    does not alias caller-visible memory.
    """
    if isinstance(data, np.ndarray):
        arr, private = data, False
    else:
        arr = np.asarray(data)
        # asarray aliases buffer-protocol inputs (memoryview, array.array,
        # __array_interface__ exporters); an aliasing result always keeps a
        # reference to its owner in ``base``, so only a base-less fresh
        # allocation (list/tuple/scalar coercion) is private memory.
        private = arr.base is None
    if arr.dtype != dtype or not arr.flags["C_CONTIGUOUS"]:
        arr = np.ascontiguousarray(arr, dtype=dtype)
        private = True
    return arr.reshape(-1), private


def snapshot(data, dtype) -> np.ndarray:
    """Flat copy-safe array: retainable after the caller's buffer mutates."""
    flat, private = flatten(data, dtype)
    return flat if private else flat.copy()
