"""repro.diagnostics — rendering shared by static and dynamic checkers.

Both ``repro.lint`` (the static protocol checker) and ``repro.sanitizer``
(the dynamic happens-before checker) report findings as a bracketed kind
tag, a one-line headline, and an indented block of labeled detail lines
ending in ``file.py:NN`` call sites::

    [CAF006] deadlock_demo.py:27 in figure2: blocking MPI call may ...
        rule:   dual-runtime-deadlock
        put:    deadlock_demo.py:26 in figure2

    [race] rank 3 @ t=0.000120000: conflicting write/read ...
        region: window 0 memory at rank 3
        access: kernel.py:41 in body

This module owns that shared layout (:func:`format_block`), the
application-frame call-site extraction used by the dynamic checker
(:func:`call_site`), and the summary-line convention
(:func:`summary_line`), so static and dynamic findings print identically
and downstream tooling can parse one format.
"""

from __future__ import annotations

import os
import sys
from collections.abc import Iterable
from types import FrameType

#: Path fragments identifying runtime-internal frames that a diagnostic
#: should never point at. Application code (``repro/apps``) and tests are
#: deliberately *not* listed.
RUNTIME_PARTS = (
    "repro/sim/",
    "repro/mpi/",
    "repro/gasnet/",
    "repro/caf/",
    "repro/sanitizer/",
    "repro/lint/",
    "repro/diagnostics/",
)


def call_site() -> str:
    """The innermost *application* frame, as ``file.py:NN in func``.

    Walks outward past runtime and stdlib frames so a report points at the
    user's ``A.write(...)`` line, not at the window implementation.
    """
    frame: FrameType | None = sys._getframe(1)
    fallback: str | None = None
    while frame is not None:
        fname = frame.f_code.co_filename.replace("\\", "/")
        label = f"{os.path.basename(fname)}:{frame.f_lineno} in {frame.f_code.co_name}"
        if fallback is None:
            fallback = label
        runtime = any(part in fname for part in RUNTIME_PARTS)
        stdlib = fname.endswith("/threading.py") or fname.startswith("<")
        if not runtime and not stdlib:
            return label
        frame = frame.f_back
    return fallback or "<unknown>"


def source_site(path: str, line: int, func: str = "") -> str:
    """A static source location in the same shape :func:`call_site` emits."""
    label = f"{os.path.basename(path)}:{line}"
    return f"{label} in {func}" if func else label


def format_block(head: str, details: Iterable[tuple[str, object]]) -> str:
    """One finding: headline plus aligned, indented detail lines.

    ``details`` pairs whose value is empty/None are skipped, so callers
    can list every optional field unconditionally.
    """
    lines = [head]
    for label, value in details:
        if value is None or value == "":
            continue
        tag = f"{label}:"
        pad = tag.ljust(8)
        if not pad.endswith(" "):
            pad += " "
        lines.append(f"    {pad}{value}")
    return "\n".join(lines)


def summary_line(tool: str, count: int, scope: str) -> str:
    """The one-line report header both checkers print before findings."""
    if count == 0:
        return f"{tool}: clean ({scope}, no violations)"
    return f"{tool}: {count} distinct violation(s) across {scope}"
