"""Point-to-point and collective rate microbenchmarks.

Regenerates the paper's Mira/Edison microbenchmark source data: coarray
READ / WRITE / EVENT_NOTIFY operations per second between a fixed pair of
images (rates essentially flat in P), and all-to-all operations per second
over all P images (rates falling with P, much faster for the hand-rolled
CAF-GASNet all-to-all than for ``MPI_ALLTOALL``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caf.image import Image
from repro.util.errors import CafError

OPS = ("read", "write", "notify", "alltoall")


@dataclass
class MicrobenchResult:
    nranks: int
    op: str
    iterations: int
    elapsed: float
    ops_per_second: float


def run_microbench(
    img: Image,
    *,
    op: str = "write",
    iterations: int = 200,
    nbytes: int = 8,
    alltoall_elems: int = 1,
) -> MicrobenchResult:
    """One image's SPMD body for one microbenchmark ``op``.

    For p2p ops, image 0 drives and image 1 is the passive target (it sits
    in the progress engine, like the real benchmark's quiescent peer);
    other images idle at barriers. The reported rate is image 0's.
    """
    if op not in OPS:
        raise CafError(f"op must be one of {OPS}, got {op!r}")
    count = max(nbytes // 8, 1)
    co = img.allocate_coarray(count, np.float64)
    ev = img.allocate_events(1)
    img.sync_all()

    t0 = img.now
    elapsed = 0.0
    if op == "alltoall":
        send = np.zeros((img.nranks, alltoall_elems))
        recv = np.zeros_like(send)
        for _ in range(iterations):
            img.team_alltoall(send, recv)
        elapsed = img.now - t0
    elif img.rank == 0:
        data = np.ones(count)
        if op == "read":
            for _ in range(iterations):
                co.read(1 % img.nranks)
        elif op == "write":
            for _ in range(iterations):
                co.write(1 % img.nranks, data)
        else:  # notify
            for _ in range(iterations):
                ev.notify(1 % img.nranks)
        elapsed = img.now - t0
    elif img.rank == 1:
        if op == "notify":
            ev.wait(count=iterations)

    img.sync_all()
    rate = iterations / elapsed if elapsed > 0 else float("inf")
    return MicrobenchResult(
        nranks=img.nranks,
        op=op,
        iterations=iterations,
        elapsed=elapsed,
        ops_per_second=rate,
    )
