"""Distributed arrays over coarrays — the paper's QMCPACK/GFMC motivation.

§1: applications like QMCPACK and GFMC keep large per-node tables whose
growth outpaces node memory; the paper's §7 future work is to "define
these arrays as CAF coarrays, allowing the runtime to distribute them
across nodes and convert load/store accesses of these arrays to remote
data access operations". :class:`DistributedArray` is exactly that
conversion: a flat global array block-distributed over a team, with
NumPy-style indexed reads/writes that become coarray get/put when the
index lands on another image.
"""

from __future__ import annotations

import numpy as np

from repro.caf.image import Image
from repro.caf.teams import Team
from repro.util.errors import CafError


class DistributedArray:
    """A 1-D global array of ``total`` elements, block-distributed.

    Element ``i`` lives on image ``i // block`` (last image absorbs the
    remainder). Reads/writes accept ints, slices, or fancy index arrays;
    remote portions travel as coarray transfers, batched per owner.
    """

    def __init__(self, img: Image, total: int, dtype=np.float64, team: Team | None = None):
        if total <= 0:
            raise CafError(f"DistributedArray needs a positive size, got {total}")
        self.img = img
        self.team = team or img.team_world
        self.total = int(total)
        self.dtype = np.dtype(dtype)
        p = self.team.size
        self.block = -(-self.total // p)  # ceil division
        my_lo = min(self.team.my_index * self.block, self.total)
        my_hi = min(my_lo + self.block, self.total)
        self.local_range = (my_lo, my_hi)
        # Every image allocates the full block size (symmetric coarray);
        # the tail image simply leaves its excess unused.
        self.coarray = img.allocate_coarray(self.block, self.dtype, team=self.team)

    # -- mapping -----------------------------------------------------------

    def owner_of(self, index: int) -> int:
        if not 0 <= index < self.total:
            raise CafError(f"index {index} out of range [0, {self.total})")
        return index // self.block

    @property
    def local(self) -> np.ndarray:
        """This image's block (direct, no communication)."""
        lo, hi = self.local_range
        return self.coarray.local[: hi - lo]

    def _partition(self, indices: np.ndarray) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Group global indices by owning image.

        Returns owner -> (positions into the request, local offsets).
        """
        owners = indices // self.block
        groups: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for owner in np.unique(owners):
            sel = np.nonzero(owners == owner)[0]
            groups[int(owner)] = (sel, indices[sel] - owner * self.block)
        return groups

    def _normalize(self, key) -> np.ndarray:
        if isinstance(key, slice):
            start, stop, step = key.indices(self.total)
            idx = np.arange(start, stop, step)
        else:
            idx = np.atleast_1d(np.asarray(key, dtype=np.int64))
        if idx.size and (idx.min() < 0 or idx.max() >= self.total):
            raise CafError(
                f"index range [{idx.min()}, {idx.max()}] outside [0, {self.total})"
            )
        return idx

    # -- access --------------------------------------------------------------

    def __getitem__(self, key) -> np.ndarray | np.generic:
        scalar = isinstance(key, (int, np.integer))
        idx = self._normalize(key)
        out = np.empty(idx.size, self.dtype)
        for owner, (positions, offsets) in self._partition(idx).items():
            if owner == self.team.my_index:
                out[positions] = self.coarray.local[offsets]
            elif _contiguous(offsets):
                lo, hi = int(offsets[0]), int(offsets[-1]) + 1
                out[positions] = self.coarray.read(owner, offset=lo, count=hi - lo)
            else:
                # Batched gather: fetch the covering range once, then select.
                lo, hi = int(offsets.min()), int(offsets.max()) + 1
                chunk = self.coarray.read(owner, offset=lo, count=hi - lo)
                out[positions] = chunk[offsets - lo]
        return out[0] if scalar else out

    def __setitem__(self, key, values) -> None:
        idx = self._normalize(key)
        vals = np.broadcast_to(
            np.asarray(values, dtype=self.dtype), idx.shape
        )
        for owner, (positions, offsets) in self._partition(idx).items():
            if owner == self.team.my_index:
                self.coarray.local[offsets] = vals[positions]
            elif _contiguous(offsets):
                self.coarray.write(
                    owner, vals[positions], offset=int(offsets[0])
                )
            else:
                # Read-modify-write of the covering range would race other
                # writers; write element runs instead.
                for pos, off in zip(positions, offsets):
                    self.coarray.write(owner, vals[pos : pos + 1], offset=int(off))

    def add_at(self, key, values) -> None:
        """Element-wise remote accumulation (read-modify-write per owner).

        Unlike ``__setitem__`` this is *not* atomic against concurrent
        accumulators; synchronize rounds with events or barriers (as GFMC's
        communication phases do).
        """
        idx = self._normalize(key)
        vals = np.broadcast_to(np.asarray(values, dtype=self.dtype), idx.shape)
        for owner, (positions, offsets) in self._partition(idx).items():
            if owner == self.team.my_index:
                np.add.at(self.coarray.local, offsets, vals[positions])
            else:
                lo, hi = int(offsets.min()), int(offsets.max()) + 1
                chunk = self.coarray.read(owner, offset=lo, count=hi - lo)
                np.add.at(chunk, offsets - lo, vals[positions])
                self.coarray.write(owner, chunk, offset=lo)

    # -- collectives over the array -----------------------------------------------

    def gather(self) -> np.ndarray:
        """Every image gets the whole array (allgather of blocks)."""
        blocks = np.zeros((self.team.size, self.block), self.dtype)
        self.img.team_allgather(self.coarray.local, blocks, team=self.team)
        return blocks.reshape(-1)[: self.total]

    def global_sum(self) -> float:
        from repro.mpi.constants import SUM

        send = np.array([float(self.local.sum())])
        recv = np.zeros(1)
        self.img.team_allreduce(send, recv, SUM, team=self.team)
        return float(recv[0])

    def fill(self, value: float) -> None:
        self.local[:] = value

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.local_range
        return (
            f"<DistributedArray total={self.total} dtype={self.dtype} "
            f"block={self.block} local=[{lo},{hi})>"
        )


def _contiguous(offsets: np.ndarray) -> bool:
    return offsets.size > 0 and bool(
        (np.diff(offsets) == 1).all() if offsets.size > 1 else True
    )
