"""HPCC RandomAccess (GUPS) on the CAF 2.0 API — §4.1 of the paper.

Distributed table of 2^t entries per image; every image generates random
64-bit update values and applies ``table[v mod T] ^= v``. Updates are
routed with the CAF 2.0 **hypercube software routing** algorithm: in
dimension ``d`` each image splits its in-flight updates by bit ``d`` of
the owning image and bulk-writes the "other half" into its dimension-``d``
partner's landing coarray, then posts an event. The primitives this
stresses — bulk ``coarray_write`` and ``event_notify``/``event_wait`` —
are exactly those the paper's Figure 4 decomposes.

Double-buffered landing zones (parity of the routing round) with
consume-acknowledgement events prevent a fast partner from overwriting a
landing buffer before it is drained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caf.image import Image
from repro.util.errors import CafError


@dataclass
class RandomAccessResult:
    nranks: int
    table_bits_per_image: int
    updates_per_image: int
    elapsed: float
    gups: float
    table_checksum: int


def generate_updates(seed: int, rank: int, count: int, total_bits: int) -> np.ndarray:
    """Deterministic per-image update stream (stands in for the HPCC LCG)."""
    rng = np.random.default_rng((seed, rank))
    return rng.integers(0, 1 << total_bits, size=count, dtype=np.uint64)


def apply_updates(table: np.ndarray, updates: np.ndarray, mask: int) -> None:
    """XOR-apply updates whose owning entries live in this (local) table."""
    np.bitwise_xor.at(table, (updates & np.uint64(mask)).astype(np.int64), updates)


def reference_tables(
    seed: int, nranks: int, table_bits_per_image: int, updates_per_image: int
) -> list[np.ndarray]:
    """Serial reference: what every image's table must hold at the end."""
    local_size = 1 << table_bits_per_image
    total_bits = table_bits_per_image + int(np.log2(nranks)) + 8
    tables = [np.zeros(local_size, np.uint64) for _ in range(nranks)]
    total = local_size * nranks
    for rank in range(nranks):
        updates = generate_updates(seed, rank, updates_per_image, total_bits)
        idx = (updates % np.uint64(total)).astype(np.int64)
        owner = idx // local_size
        local = idx % local_size
        for r in range(nranks):
            sel = owner == r
            np.bitwise_xor.at(tables[r], local[sel], updates[sel])
    return tables


def run_randomaccess(
    img: Image,
    *,
    table_bits_per_image: int = 10,
    updates_per_image: int = 2048,
    batches: int = 8,
    seed: int = 42,
) -> RandomAccessResult:
    """One image's SPMD body. Returns this image's result record.

    The per-image table ends up in
    ``img.cluster.shared('ra-tables', dict)[rank]`` for validation.
    """
    nranks = img.nranks
    if nranks & (nranks - 1):
        raise CafError("RandomAccess hypercube routing needs a power-of-two image count")
    dims = int(np.log2(nranks)) if nranks > 1 else 0
    local_size = 1 << table_bits_per_image
    total = local_size * nranks
    total_bits = table_bits_per_image + dims + 8
    table = np.zeros(local_size, np.uint64)
    img.cluster.shared("ra-tables", dict)[img.rank] = table

    # One landing zone per hypercube dimension: the dimension-d partner is
    # the same image every batch, so a drained-acknowledgement event from it
    # is what makes reusing the buffer in the next batch safe. Capacity is
    # generous: routing at most moves every in-flight update each round.
    capacity = 4 * max(updates_per_image // batches, 1) + 8
    land = [img.allocate_coarray(capacity + 1, np.uint64) for _ in range(max(dims, 1))]
    arrive = img.allocate_events(max(dims, 1))  # slot = dim: data has landed
    drained = img.allocate_events(max(dims, 1))  # slot = dim: landing zone free

    updates = generate_updates(seed, img.rank, updates_per_image, total_bits)
    batch_bounds = np.linspace(0, updates_per_image, batches + 1, dtype=int)

    img.sync_all()
    t0 = img.now

    my_rank = np.uint64(img.rank)
    for b in range(batches):
        in_flight = updates[batch_bounds[b] : batch_bounds[b + 1]]
        for d in range(dims):
            partner = img.rank ^ (1 << d)
            owner = (in_flight % np.uint64(total)) >> np.uint64(table_bits_per_image)
            bit = np.uint64(1 << d)
            stay = (owner & bit) == (my_rank & bit)
            outgoing = in_flight[~stay]
            kept = in_flight[stay]
            if outgoing.size > capacity:
                raise CafError(
                    f"landing capacity {capacity} exceeded ({outgoing.size}); "
                    "increase batches"
                )
            # The partner must have drained what we wrote there last batch.
            if b >= 1:
                drained.wait(slot=d)
            payload = np.empty(outgoing.size + 1, np.uint64)
            payload[0] = outgoing.size
            payload[1:] = outgoing
            land[d].write(partner, payload)
            arrive.notify(partner, slot=d)
            arrive.wait(slot=d)
            n_in = int(land[d].local[0])
            incoming = land[d].local[1 : 1 + n_in].copy()
            drained.notify(partner, slot=d)
            in_flight = np.concatenate([kept, incoming])
        with img.profile("computation"):
            apply_updates(table, in_flight, local_size - 1)
            img.compute(flops=max(in_flight.size, 1))

    # Drain the last two rounds' acknowledgements so nothing is lost.
    img.sync_all()
    elapsed = img.now - t0
    total_updates = updates_per_image * nranks
    gups = total_updates / elapsed / 1e9 if elapsed > 0 else float("inf")
    return RandomAccessResult(
        nranks=nranks,
        table_bits_per_image=table_bits_per_image,
        updates_per_image=updates_per_image,
        elapsed=elapsed,
        gups=gups,
        table_checksum=int(np.bitwise_xor.reduce(table)),
    )
