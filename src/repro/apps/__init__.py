"""The paper's evaluation applications, rebuilt on the CAF 2.0 API (§4).

* :mod:`repro.apps.randomaccess` — HPCC RandomAccess (GUPS): hypercube
  software routing of bulk updates; stresses coarray writes + events.
* :mod:`repro.apps.fft` — HPCC FFT (GFlops): transpose-based distributed
  FFT; stresses the all-to-all collective.
* :mod:`repro.apps.hpl` — HPCC High-Performance Linpack (TFlops): blocked
  right-looking LU; compute-dominated.
* :mod:`repro.apps.cgpop` — the CGPOP miniapp: hybrid MPI+CAF conjugate
  gradient with PUSH/PULL coarray halo exchange and MPI reductions.
* :mod:`repro.apps.microbench` — point-to-point READ/WRITE/NOTIFY and
  all-to-all rate microbenchmarks (the paper's Mira/Edison source data).

Each module exposes ``run_<app>`` returning a result record with the
paper's figure of merit, plus a pure-NumPy reference used for validation.
"""

from repro.apps.cgpop import CgpopResult, run_cgpop
from repro.apps.fft import FftResult, run_fft
from repro.apps.hpl import HplResult, run_hpl
from repro.apps.microbench import MicrobenchResult, run_microbench
from repro.apps.randomaccess import RandomAccessResult, run_randomaccess

__all__ = [
    "CgpopResult",
    "FftResult",
    "HplResult",
    "MicrobenchResult",
    "RandomAccessResult",
    "run_cgpop",
    "run_fft",
    "run_hpl",
    "run_microbench",
    "run_randomaccess",
]
