"""HPCC-style verification phases for the benchmark applications.

The real HPC Challenge benchmarks do not just time their kernels — each
run re-checks its own answer (RandomAccess re-applies the update stream
and counts mismatched table entries, tolerating a small error fraction
from unsynchronized updates; FFT applies an inverse transform and takes a
residual; HPL computes the scaled residual of the solved system). These
are those checks, adapted to the reproduction's applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.hpl import assemble_lu, make_matrix
from repro.apps.randomaccess import generate_updates


@dataclass
class VerificationReport:
    benchmark: str
    metric: str
    value: float
    threshold: float
    passed: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.benchmark}: {self.metric} = {self.value:.3e} "
            f"(threshold {self.threshold:.3e})"
        )


def verify_randomaccess(
    tables: dict[int, np.ndarray],
    *,
    seed: int,
    nranks: int,
    table_bits_per_image: int,
    updates_per_image: int,
    tolerated_error_fraction: float = 0.01,
) -> VerificationReport:
    """HPCC RandomAccess verification: re-apply the update stream (XOR is
    self-inverse) and count table entries that fail to return to zero."""
    local_size = 1 << table_bits_per_image
    total = local_size * nranks
    dims = int(np.log2(nranks)) if nranks > 1 else 0
    total_bits = table_bits_per_image + dims + 8
    scratch = [tables[r].copy() for r in range(nranks)]
    for rank in range(nranks):
        updates = generate_updates(seed, rank, updates_per_image, total_bits)
        idx = (updates % np.uint64(total)).astype(np.int64)
        owner = idx // local_size
        local = idx % local_size
        for r in range(nranks):
            sel = owner == r
            np.bitwise_xor.at(scratch[r], local[sel], updates[sel])
    errors = sum(int(np.count_nonzero(t)) for t in scratch)
    fraction = errors / (local_size * nranks)
    return VerificationReport(
        benchmark="RandomAccess",
        metric="fraction of incorrect table entries",
        value=fraction,
        threshold=tolerated_error_fraction,
        passed=fraction <= tolerated_error_fraction,
    )


def verify_fft(
    output_chunks: dict[int, np.ndarray],
    input_signal: np.ndarray,
    *,
    threshold_factor: float = 16.0,
) -> VerificationReport:
    """HPCC FFT verification: inverse-transform the computed spectrum and
    measure the scaled residual against the original signal."""
    nranks = len(output_chunks)
    spectrum = np.concatenate([output_chunks[r] for r in range(nranks)])
    m = spectrum.size
    roundtrip = np.fft.ifft(spectrum)
    eps = np.finfo(np.float64).eps
    residual = float(
        np.abs(roundtrip - input_signal).max() / (eps * np.log2(m))
    )
    return VerificationReport(
        benchmark="FFT",
        metric="max |ifft(FFT(x)) - x| / (eps log2 m)",
        value=residual,
        threshold=threshold_factor,
        passed=residual < threshold_factor,
    )


def verify_hpl(
    shared_factors: dict[int, dict[int, np.ndarray]],
    *,
    n: int,
    block: int,
    seed: int,
    threshold_factor: float = 16.0,
) -> VerificationReport:
    """HPL verification: solve Ax = b from the distributed LU factors and
    compute the standard scaled residual
    ``||Ax - b||_inf / (eps ||A||_inf ||x||_inf n)``."""
    from scipy.linalg import solve_triangular

    lower, upper = assemble_lu(shared_factors, n, block)
    a = make_matrix(seed, n)
    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal(n)
    y = solve_triangular(lower, b, lower=True, unit_diagonal=True)
    x = solve_triangular(upper, y)
    eps = np.finfo(np.float64).eps
    residual = float(
        np.abs(a @ x - b).max()
        / (eps * np.abs(a).sum(axis=1).max() * np.abs(x).max() * n)
    )
    return VerificationReport(
        benchmark="HPL",
        metric="||Ax-b||_inf / (eps ||A||_inf ||x||_inf n)",
        value=residual,
        threshold=threshold_factor,
        passed=residual < threshold_factor,
    )


def verify_cgpop(
    solution_strips: dict[int, np.ndarray],
    *,
    ny: int,
    nx: int,
    seed: int,
    threshold: float = 1e-6,
) -> VerificationReport:
    """CGPOP verification: residual of the assembled solution against the
    5-point system (relative to ||b||)."""
    from repro.apps.cgpop import apply_laplacian, make_rhs

    nranks = len(solution_strips)
    x = np.vstack([solution_strips[r] for r in range(nranks)])
    b = make_rhs(seed, ny, nx)
    ax = apply_laplacian(x, np.zeros(nx), np.zeros(nx))
    rel = float(np.linalg.norm(ax - b) / np.linalg.norm(b))
    return VerificationReport(
        benchmark="CGPOP",
        metric="||Ax-b|| / ||b||",
        value=rel,
        threshold=threshold,
        passed=rel < threshold,
    )
