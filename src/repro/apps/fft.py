"""HPCC FFT on the CAF 2.0 API — §4.2 of the paper.

Distributed 1-D complex DFT of size ``m = n1 * n2`` via the transpose
(four-step) algorithm, whose data movement is **solely all-to-all**
(matching the paper's description of the CAF 2.0 FFT): three distributed
transposes, each one ``team_alltoall``, interleaved with local FFT phases
and a twiddle scaling.

Math (row-major ``x[j1*n2 + j2] = A[j1, j2]``)::

    X[k2*n1 + k1] = FFT_j2( twiddle(j2,k1) * FFT_j1(A)[k1, j2] )[k1, k2]

so: transpose -> length-n1 FFTs -> twiddle -> transpose -> length-n2 FFTs
-> transpose (into natural output order).

Local FFTs run as real ``numpy.fft`` calls (verifiable output) while
``5 n log2 n`` flops per transform are charged to the virtual clock.
The figure of merit is GFlop/s ``= 5 m log2(m) / t / 1e9``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caf.image import Image
from repro.util.errors import CafError


@dataclass
class FftResult:
    nranks: int
    m: int
    elapsed: float
    gflops: float


def make_input(seed: int, m: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(m) + 1j * rng.standard_normal(m)).astype(np.complex128)


def _distributed_transpose(img: Image, local: np.ndarray) -> np.ndarray:
    """All-to-all transpose of a block-row-distributed matrix.

    ``local`` is (rows_per, cols) where cols is divisible by P; returns
    (cols // P, rows_per * P) — this image's rows of the transpose.
    """
    p = img.nranks
    rows_per, cols = local.shape
    if cols % p:
        raise CafError(f"transpose needs P | cols ({cols} % {p})")
    cols_per = cols // p
    # send[j] = my rows of column-block j
    send = np.ascontiguousarray(
        local.reshape(rows_per, p, cols_per).transpose(1, 0, 2)
    )
    recv = np.empty_like(send)  # recv[i] = rows (i's row-block) x my cols
    img.team_alltoall(send, recv)
    # Assemble: transpose each received block and lay side by side —
    # out[:, src*rows_per + r] = recv[src, r, :], vectorized (a per-source
    # loop is O(P) host work per rank, quadratic across the job).
    out = np.ascontiguousarray(
        recv.transpose(2, 0, 1).reshape(cols_per, rows_per * p)
    )
    img.compute(flops=2 * out.size)  # pack/unpack cost
    return out


def _local_fft_rows(img: Image, mat: np.ndarray) -> np.ndarray:
    rows, n = mat.shape
    out = np.fft.fft(mat, axis=1)
    img.compute(flops=5.0 * rows * n * max(np.log2(n), 1.0))
    return out


def run_fft(img: Image, *, m: int = 1 << 12, seed: int = 7) -> FftResult:
    """One image's SPMD body; the gathered spectrum lands in
    ``img.cluster.shared('fft-output', dict)[rank]`` (this image's chunk)."""
    p = img.nranks
    if m & (m - 1):
        raise CafError("FFT size must be a power of two")
    log_m = int(np.log2(m))
    n1 = 1 << (log_m // 2)
    n2 = m // n1
    if n1 % p or n2 % p:
        raise CafError(f"FFT factors ({n1} x {n2}) must be divisible by P={p}")

    # Block-row distribution of the n1 x n2 input matrix. The generator
    # output is shared across images (each keeps only its row block) —
    # per-rank generation would cost O(m) memory per image, which at
    # paper scale (4096 ranks, m = 2^24) is hundreds of GB.
    x = img.cluster.shared(("fft-input", seed, m), lambda: make_input(seed, m))
    a = x.reshape(n1, n2)
    rows_per = n1 // p
    local = a[img.rank * rows_per : (img.rank + 1) * rows_per].copy()

    img.sync_all()
    t0 = img.now

    # Step 1: transpose so each image holds full columns of A (length n1).
    at = _distributed_transpose(img, local)  # (n2/P, n1)
    # Step 2: length-n1 FFTs over j1.
    bt = _local_fft_rows(img, at)  # B^T[j2, k1]
    # Step 3: twiddle B^T[j2, k1] *= exp(-2 pi i j2 k1 / m).
    j2 = np.arange(img.rank * (n2 // p), (img.rank + 1) * (n2 // p))[:, None]
    k1 = np.arange(n1)[None, :]
    bt = bt * np.exp(-2j * np.pi * (j2 * k1) / m)
    img.compute(flops=6.0 * bt.size)
    # Step 4: transpose back -> rows k1 of B.
    b = _distributed_transpose(img, bt)  # (n1/P, n2)
    # Step 5: length-n2 FFTs over j2 -> C[k1, k2].
    c = _local_fft_rows(img, b)
    # Step 6: transpose -> rows k2 of C^T; flattening gives natural order.
    ct = _distributed_transpose(img, c)  # (n2/P, n1)

    elapsed = img.now - t0
    img.cluster.shared("fft-output", dict)[img.rank] = ct.reshape(-1)
    flops = 5.0 * m * log_m
    return FftResult(
        nranks=p,
        m=m,
        elapsed=elapsed,
        gflops=flops / elapsed / 1e9 if elapsed > 0 else float("inf"),
    )
