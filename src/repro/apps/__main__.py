"""CLI: run the benchmark applications standalone.

Usage::

    python -m repro.apps randomaccess --procs 8 --backend gasnet
    python -m repro.apps fft --procs 16 --platform edison --m 1048576
    python -m repro.apps hpl --procs 4 --n 128
    python -m repro.apps cgpop --procs 8 --mode pull
    python -m repro.apps cgpop2d --procs 4 --ny 16 --nx 16
    python -m repro.apps micro --procs 4 --op write

Every run prints the figure of merit, the per-category time breakdown,
and the verification verdict where the benchmark defines one.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.cgpop import run_cgpop, run_cgpop_2d
from repro.apps.fft import make_input, run_fft
from repro.apps.hpl import run_hpl
from repro.apps.microbench import OPS, run_microbench
from repro.apps.randomaccess import run_randomaccess
from repro.apps.verification import (
    verify_cgpop,
    verify_fft,
    verify_hpl,
    verify_randomaccess,
)
from repro.caf.program import run_caf
from repro.platforms import PLATFORMS
from repro.util.tables import format_table


def _print_breakdown(run) -> None:
    breakdown = run.profiler.breakdown()
    if breakdown:
        rows = sorted(breakdown.items(), key=lambda kv: -kv[1])
        print(
            format_table(
                ["category", "mean s/image"], rows, title="time decomposition"
            )
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.apps")
    parser.add_argument(
        "app",
        choices=["randomaccess", "fft", "hpl", "cgpop", "cgpop2d", "micro"],
    )
    parser.add_argument("--procs", type=int, default=8)
    parser.add_argument("--backend", choices=["mpi", "gasnet"], default="mpi")
    parser.add_argument(
        "--platform", choices=sorted(PLATFORMS), default=None,
        help="machine spec (default: laptop; with --replay-ir: the recorded spec)",
    )
    parser.add_argument("--m", type=int, default=1 << 14, help="FFT size")
    parser.add_argument("--n", type=int, default=96, help="HPL matrix order")
    parser.add_argument("--ny", type=int, default=32)
    parser.add_argument("--nx", type=int, default=16)
    parser.add_argument("--mode", choices=["push", "pull"], default="push")
    parser.add_argument("--op", choices=list(OPS), default="write")
    parser.add_argument("--updates", type=int, default=1024)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the conservative sharded dispatcher with N shards "
        "(default: the REPRO_SIM_SHARDS environment variable; the virtual "
        "schedule is bit-identical to the sequential dispatcher)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a trace and write it as Chrome/Perfetto JSON to PATH",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="enable op-level metrics and write the RunReport JSON to PATH",
    )
    parser.add_argument(
        "--live", metavar="PATH", default=None,
        help="stream live-telemetry JSONL snapshots to PATH during the run "
        "(render with `python -m repro.obs top PATH`)",
    )
    parser.add_argument(
        "--live-interval", type=float, default=None, metavar="S",
        help="wall seconds between telemetry snapshots (default 0.5)",
    )
    parser.add_argument(
        "--record-ir", metavar="PATH", default=None,
        help="record the run's op-stream trace to PATH (stem for .npz + .json)",
    )
    parser.add_argument(
        "--replay-ir", metavar="PATH", default=None,
        help="skip the live run: re-price the recorded trace at PATH under "
        "--platform (default: the recorded spec)",
    )
    args = parser.parse_args(argv)

    if args.replay_ir is not None:
        return _replay_ir(args)
    spec = PLATFORMS[args.platform or "laptop"]
    if args.record_ir is not None:
        from repro.ir import record as ir_record

        ir_record.start(args.record_ir)
    common = dict(
        backend=args.backend,
        trace=args.trace is not None,
        metrics=args.metrics is not None,
        live=args.live,
        live_interval=args.live_interval,
        shards=args.shards,
    )
    print(
        f"== {args.app} on {spec.name} x{args.procs} images "
        f"(CAF-{args.backend.upper()}) =="
    )

    if args.app == "randomaccess":
        run = run_caf(
            run_randomaccess, args.procs, spec, **common,
            updates_per_image=args.updates, seed=args.seed,
        )
        res = run.results[0]
        print(f"GUPS: {res.gups:.6f}  (virtual time {res.elapsed * 1e3:.3f} ms)")
        report = verify_randomaccess(
            run.cluster._shared["ra-tables"],
            seed=args.seed,
            nranks=args.procs,
            table_bits_per_image=res.table_bits_per_image,
            updates_per_image=res.updates_per_image,
        )
        print(report)
    elif args.app == "fft":
        run = run_caf(run_fft, args.procs, spec, **common, m=args.m, seed=args.seed)
        res = run.results[0]
        print(f"GFlop/s: {res.gflops:.3f}  (m = {res.m})")
        print(verify_fft(run.cluster._shared["fft-output"], make_input(args.seed, args.m)))
    elif args.app == "hpl":
        run = run_caf(run_hpl, args.procs, spec, **common, n=args.n, seed=args.seed)
        res = run.results[0]
        print(f"TFlop/s: {res.tflops:.6f}  (N = {res.n})")
        print(
            verify_hpl(
                run.cluster._shared["hpl-factors"], n=args.n, block=res.block, seed=args.seed
            )
        )
    elif args.app == "cgpop":
        run = run_caf(
            run_cgpop, args.procs, spec, **common,
            ny=args.ny, nx=args.nx, mode=args.mode, seed=args.seed,
        )
        res = run.results[0]
        print(
            f"iterations: {res.iterations}, residual {res.residual:.2e}, "
            f"converged={res.converged}, time {res.elapsed * 1e3:.3f} ms"
        )
        print(
            verify_cgpop(
                run.cluster._shared["cgpop-solution"], ny=args.ny, nx=args.nx, seed=args.seed
            )
        )
    elif args.app == "cgpop2d":
        run = run_caf(
            run_cgpop_2d, args.procs, spec, **common,
            ny=args.ny, nx=args.nx, seed=args.seed,
        )
        res = run.results[0]
        print(
            f"iterations: {res.iterations}, residual {res.residual:.2e}, "
            f"converged={res.converged}, time {res.elapsed * 1e3:.3f} ms"
        )
    else:  # micro
        run = run_caf(run_microbench, args.procs, spec, **common, op=args.op)
        res = run.results[0]
        print(f"{args.op}: {res.ops_per_second:,.0f} ops/s")
    _print_breakdown(run)
    plan = run.cluster.shard_plan
    if plan is not None:
        st = run.cluster.engine.shard_stats()
        print(
            f"shards: {st['nshards']} (lookahead {st['lookahead']:.3e}s, "
            f"{st['epochs']} epochs, {st['null_messages']} null msgs, "
            f"{st['cross_messages']} cross-shard msgs)"
        )
    if args.trace is not None:
        n = run.tracer.to_chrome_trace(args.trace)
        print(f"trace: {n} events -> {args.trace}")
    if args.metrics is not None:
        report = run.report(label=f"{args.app}-x{args.procs}", app=args.app)
        report.to_json(args.metrics)
        print(f"metrics: run report -> {args.metrics}")
    if args.live is not None:
        tel = run.cluster.telemetry
        n = tel.snapshots_written if tel is not None else 0
        print(f"telemetry: {n} snapshot(s) -> {args.live}")
    if args.record_ir is not None:
        from repro.ir import record as ir_record

        written = ir_record.stop()
        trace = ir_record.last_trace()
        nops = trace.nops if trace is not None else 0
        for path in written:
            print(f"ir: {nops} ops -> {path}")
    return 0


def _replay_ir(args) -> int:
    """``--replay-ir``: re-price a recorded trace instead of running live."""
    from repro.ir.cli import main as ir_main

    ir_argv = ["replay", "--trace", args.replay_ir]
    if args.platform:
        ir_argv += ["--platform", args.platform]
    return ir_main(ir_argv)


if __name__ == "__main__":
    sys.exit(main())
