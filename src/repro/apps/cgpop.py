"""The CGPOP miniapp on the CAF 2.0 API — §4.4 of the paper.

The conjugate-gradient solver from LANL POP (the performance bottleneck of
the full ocean model), as a **hybrid MPI+CAF** program — the paper's
headline interoperability demonstration: halo exchange uses coarray
primitives (PUSH or PULL variants), while the global sums use
``MPI_Allreduce`` directly.

Problem: the 2-D 5-point Laplacian (Dirichlet) on an ``ny x nx`` grid,
rows distributed in contiguous strips. Each CG iteration performs one
halo exchange (the ``UpdateHalo`` of the miniapp) and one fused 3-word
reduction (the ``GlobalSum``).

* **PUSH**: every image *writes* its boundary rows into its neighbors'
  halo coarray, then posts an event; the neighbor waits.
* **PULL**: every image publishes its boundary rows into its own export
  coarray, posts "ready", and neighbors *read* (coarray get) after the
  event arrives, then acknowledge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caf.image import Image
from repro.mpi.constants import SUM
from repro.util.errors import CafError


@dataclass
class CgpopResult:
    nranks: int
    ny: int
    nx: int
    iterations: int
    residual: float
    elapsed: float
    converged: bool


def make_rhs(seed: int, ny: int, nx: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((ny, nx))


def apply_laplacian(local: np.ndarray, top: np.ndarray, bottom: np.ndarray) -> np.ndarray:
    """5-point stencil on this strip, given halo rows from the neighbors."""
    padded = np.vstack([top[None, :], local, bottom[None, :]])
    out = 4.0 * local
    out -= padded[:-2, :]  # north
    out -= padded[2:, :]  # south
    out[:, 1:] -= local[:, :-1]  # west
    out[:, :-1] -= local[:, 1:]  # east
    return out


class _HaloExchanger:
    """PUSH/PULL halo exchange over coarrays + events."""

    def __init__(self, img: Image, nx: int, mode: str):
        if mode not in ("push", "pull"):
            raise CafError(f"halo mode must be 'push' or 'pull', got {mode!r}")
        self.img = img
        self.nx = nx
        self.mode = mode
        self.up = img.rank - 1 if img.rank > 0 else None
        self.down = img.rank + 1 if img.rank < img.nranks - 1 else None
        # halo coarray rows: [0] = from-above, [1] = from-below (PUSH) /
        # export rows: [0] = my top row, [1] = my bottom row (PULL).
        self.buf = img.allocate_coarray((2, nx), np.float64)
        self.arrive = img.allocate_events(2)
        self.drained = img.allocate_events(2)
        self._round = 0

    def exchange(self, local: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns (top_halo, bottom_halo) for this strip."""
        if self.mode == "push":
            return self._exchange_push(local)
        return self._exchange_pull(local)

    def _wait_drained(self) -> None:
        if self._round > 0:
            if self.up is not None:
                self.drained.wait(slot=0)
            if self.down is not None:
                self.drained.wait(slot=1)

    def _exchange_push(self, local: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        nx = self.nx
        self._wait_drained()
        # Write my boundary rows into the neighbors' halo slots.
        if self.up is not None:
            self.buf.write_async(self.up, local[0], offset=nx)  # their slot 1
        if self.down is not None:
            self.buf.write_async(self.down, local[-1], offset=0)  # their slot 0
        if self.up is not None:
            self.arrive.notify(self.up, slot=1)
        if self.down is not None:
            self.arrive.notify(self.down, slot=0)
        top = np.zeros(nx)
        bottom = np.zeros(nx)
        if self.up is not None:
            self.arrive.wait(slot=0)
            top = self.buf.local[0].copy()
            self.drained.notify(self.up, slot=1)
        if self.down is not None:
            self.arrive.wait(slot=1)
            bottom = self.buf.local[1].copy()
            self.drained.notify(self.down, slot=0)
        self._round += 1
        return top, bottom

    def _exchange_pull(self, local: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        nx = self.nx
        self._wait_drained()
        # Publish my boundary rows locally, then tell neighbors they're ready.
        self.buf.local[0] = local[0]
        self.buf.local[1] = local[-1]
        if self.up is not None:
            self.arrive.notify(self.up, slot=1)
        if self.down is not None:
            self.arrive.notify(self.down, slot=0)
        top = np.zeros(nx)
        bottom = np.zeros(nx)
        if self.up is not None:
            self.arrive.wait(slot=0)
            top = self.buf.read(self.up, offset=nx, count=nx)  # their bottom row
            self.drained.notify(self.up, slot=1)
        if self.down is not None:
            self.arrive.wait(slot=1)
            bottom = self.buf.read(self.down, offset=0, count=nx)  # their top row
            self.drained.notify(self.down, slot=0)
        self._round += 1
        return top, bottom


class _HaloExchanger2D:
    """4-neighbor halo exchange on a px x py image grid.

    North/south rows are contiguous coarray writes; east/west columns use
    strided section writes (derived-datatype/VIS transfers) — the real
    POP boundary exchange shape. PUSH only (the 2-D PULL variant adds
    nothing the 1-D comparison doesn't already show).
    """

    def __init__(self, img: Image, px: int, py: int, ry: int, rx: int):
        self.img = img
        self.px, self.py = px, py
        self.ry, self.rx = ry, rx
        ix, iy = img.rank % px, img.rank // px
        self.ix, self.iy = ix, iy
        self.north = img.rank - px if iy > 0 else None
        self.south = img.rank + px if iy < py - 1 else None
        self.west = img.rank - 1 if ix > 0 else None
        self.east = img.rank + 1 if ix < px - 1 else None
        # Halo landing zones: rows [0]=from north, [1]=from south;
        # columns [2]=from west, [3]=from east (padded to a common width).
        width = max(rx, ry)
        self.buf = img.allocate_coarray((4, width), np.float64)
        self.arrive = img.allocate_events(4)
        self.drained = img.allocate_events(4)
        self._round = 0
        #: (neighbor, my_send_slice_fn, their_slot, my_wait_slot)
        self._links = [
            (self.north, lambda v: v[0, :], 1, 0),
            (self.south, lambda v: v[-1, :], 0, 1),
            (self.west, lambda v: v[:, 0], 3, 2),
            (self.east, lambda v: v[:, -1], 2, 3),
        ]

    def exchange(self, local: np.ndarray):
        if self._round > 0:
            for nbr, _send, _their, mine in self._links:
                if nbr is not None:
                    self.drained.wait(slot=mine)
        for nbr, send, their_slot, _mine in self._links:
            if nbr is not None:
                row = np.ascontiguousarray(send(local))
                self.buf.write_section(
                    nbr, (their_slot, slice(0, row.size)), row
                )
                self.arrive.notify(nbr, slot=their_slot)
        halos = {}
        for nbr, _send, _their, mine in self._links:
            length = self.rx if mine in (0, 1) else self.ry
            if nbr is None:
                halos[mine] = np.zeros(length)
            else:
                self.arrive.wait(slot=mine)
                halos[mine] = self.buf.local[mine, :length].copy()
                self.drained.notify(nbr, slot=5 - mine if mine in (2, 3) else 1 - mine)
        self._round += 1
        return halos[0], halos[1], halos[2], halos[3]  # north, south, west, east


def run_cgpop(
    img: Image,
    *,
    ny: int = 64,
    nx: int = 32,
    mode: str = "push",
    tol: float = 1e-8,
    max_iter: int = 500,
    seed: int = 11,
) -> CgpopResult:
    """One image's SPMD body: CG on the 5-point Laplacian, hybrid MPI+CAF.

    This image's solution strip lands in
    ``img.cluster.shared('cgpop-solution', dict)[rank]``.
    """
    p = img.nranks
    if ny % p:
        raise CafError(f"P={p} must divide ny={ny}")
    rows = ny // p
    r0 = img.rank * rows
    b = make_rhs(seed, ny, nx)[r0 : r0 + rows].copy()
    mpi = img.mpi()  # the hybrid part: global sums via MPI
    halo = _HaloExchanger(img, nx, mode)

    def matvec(v: np.ndarray) -> np.ndarray:
        top, bottom = halo.exchange(v)
        if img.rank == 0:
            top = np.zeros(nx)  # Dirichlet boundary
        if img.rank == p - 1:
            bottom = np.zeros(nx)
        out = apply_laplacian(v, top, bottom)
        img.compute(flops=10.0 * v.size)
        return out

    def global_sum3(a: float, bb: float, c: float) -> tuple[float, float, float]:
        # The miniapp's 3-word GlobalSum: one fused MPI reduction.
        send = np.array([a, bb, c])
        recv = np.zeros(3)
        mpi.COMM_WORLD.allreduce(send, recv, SUM)
        return float(recv[0]), float(recv[1]), float(recv[2])

    img.sync_all()
    t0 = img.now

    x = np.zeros_like(b)
    r = b - matvec(x)
    pvec = r.copy()
    rr, _, bnorm2 = global_sum3(float((r * r).sum()), 0.0, float((b * b).sum()))
    iterations = 0
    converged = False
    for it in range(1, max_iter + 1):
        ap = matvec(pvec)
        pap, _, _ = global_sum3(float((pvec * ap).sum()), 0.0, 0.0)
        alpha = rr / pap
        x += alpha * pvec
        r -= alpha * ap
        img.compute(flops=4.0 * x.size)
        rr_new, _, _ = global_sum3(float((r * r).sum()), 0.0, 0.0)
        iterations = it
        if rr_new <= tol * tol * bnorm2:
            rr = rr_new
            converged = True
            break
        pvec = r + (rr_new / rr) * pvec
        img.compute(flops=2.0 * x.size)
        rr = rr_new

    img.sync_all()
    elapsed = img.now - t0
    img.cluster.shared("cgpop-solution", dict)[img.rank] = x
    return CgpopResult(
        nranks=p,
        ny=ny,
        nx=nx,
        iterations=iterations,
        residual=float(np.sqrt(max(rr, 0.0))),
        elapsed=elapsed,
        converged=converged,
    )


def apply_laplacian_2d(
    local: np.ndarray,
    north: np.ndarray,
    south: np.ndarray,
    west: np.ndarray,
    east: np.ndarray,
) -> np.ndarray:
    """5-point stencil on a 2-D block, given all four halo vectors."""
    out = 4.0 * local
    out[1:, :] -= local[:-1, :]
    out[0, :] -= north
    out[:-1, :] -= local[1:, :]
    out[-1, :] -= south
    out[:, 1:] -= local[:, :-1]
    out[:, 0] -= west
    out[:, :-1] -= local[:, 1:]
    out[:, -1] -= east
    return out


def run_cgpop_2d(
    img: Image,
    *,
    ny: int = 32,
    nx: int = 32,
    px: int | None = None,
    py: int | None = None,
    tol: float = 1e-8,
    max_iter: int = 500,
    seed: int = 11,
) -> CgpopResult:
    """CGPOP with a 2-D px x py domain decomposition (the full miniapp's
    sub-domain layout): 4-neighbor halo exchange, strided east/west
    sections, MPI_Allreduce global sums. Solution blocks land in
    ``img.cluster.shared('cgpop2d-solution', dict)[rank]``."""
    p = img.nranks
    if px is None or py is None:
        px = int(np.sqrt(p))
        while p % px:
            px -= 1
        py = p // px
    if px * py != p:
        raise CafError(f"px*py = {px}*{py} != {p} images")
    if ny % py or nx % px:
        raise CafError(f"grid {ny}x{nx} not divisible by {py}x{px} blocks")
    ry, rx = ny // py, nx // px
    ix, iy = img.rank % px, img.rank // px
    b = make_rhs(seed, ny, nx)[iy * ry : (iy + 1) * ry, ix * rx : (ix + 1) * rx].copy()
    mpi = img.mpi()
    halo = _HaloExchanger2D(img, px, py, ry, rx)

    def matvec(v: np.ndarray) -> np.ndarray:
        north, south, west, east = halo.exchange(v)
        out = apply_laplacian_2d(v, north, south, west, east)
        img.compute(flops=10.0 * v.size)
        return out

    def gsum(value: float) -> float:
        send = np.array([value])
        recv = np.zeros(1)
        mpi.COMM_WORLD.allreduce(send, recv, SUM)
        return float(recv[0])

    img.sync_all()
    t0 = img.now
    x = np.zeros_like(b)
    r = b - matvec(x)
    pvec = r.copy()
    rr = gsum(float((r * r).sum()))
    bnorm2 = gsum(float((b * b).sum()))
    iterations = 0
    converged = False
    for it in range(1, max_iter + 1):
        ap = matvec(pvec)
        pap = gsum(float((pvec * ap).sum()))
        alpha = rr / pap
        x += alpha * pvec
        r -= alpha * ap
        rr_new = gsum(float((r * r).sum()))
        iterations = it
        if rr_new <= tol * tol * bnorm2:
            rr = rr_new
            converged = True
            break
        pvec = r + (rr_new / rr) * pvec
        img.compute(flops=6.0 * x.size)
        rr = rr_new
    img.sync_all()
    elapsed = img.now - t0
    img.cluster.shared("cgpop2d-solution", dict)[img.rank] = (iy, ix, x)
    return CgpopResult(
        nranks=p,
        ny=ny,
        nx=nx,
        iterations=iterations,
        residual=float(np.sqrt(max(rr, 0.0))),
        elapsed=elapsed,
        converged=converged,
    )


def assemble_2d_solution(blocks: dict[int, tuple[int, int, np.ndarray]], ny: int, nx: int) -> np.ndarray:
    """Reassemble the global grid from per-image (iy, ix, block) entries."""
    out = np.zeros((ny, nx))
    for _rank, (iy, ix, block) in blocks.items():
        ry, rx = block.shape
        out[iy * ry : (iy + 1) * ry, ix * rx : (ix + 1) * rx] = block
    return out
