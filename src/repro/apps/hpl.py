"""High-Performance Linpack on the CAF 2.0 API — §4.3 of the paper.

Right-looking blocked LU factorization without pivoting (the test matrix
is made strongly diagonally dominant, so pivoting is unnecessary for
stability), with a 1-D block-cyclic column distribution. Each iteration:

1. the owner of column-block ``k`` factorizes the panel (local compute),
2. the panel is **team-broadcast** to all images (an ``MPI_BCAST`` under
   CAF-MPI; a hand-rolled put/AM binomial tree under CAF-GASNet),
3. every image updates its own trailing column blocks — the triangular
   solve and the rank-``nb`` GEMM that dominate the flop count.

HPL's performance is compute-bound (2/3 N^3 flops), which is why the
paper finds the two runtimes indistinguishable here (Figures 9-10).
Local math runs as real NumPy so the factorization is verifiable; the
flops are charged to the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caf.image import Image
from repro.util.errors import CafError


@dataclass
class HplResult:
    nranks: int
    n: int
    block: int
    elapsed: float
    tflops: float


def make_matrix(seed: int, n: int) -> np.ndarray:
    """Random dense matrix, diagonally dominant (stable without pivoting)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a[np.diag_indices(n)] += 2.0 * n
    return a


def run_hpl(img: Image, *, n: int = 192, block: int = 16, seed: int = 5) -> HplResult:
    """One image's SPMD body. The factors of this image's blocks land in
    ``img.cluster.shared('hpl-factors', dict)[rank]`` for validation."""
    p = img.nranks
    if n % block:
        raise CafError(f"block size {block} must divide N={n}")
    nblocks = n // block
    a = make_matrix(seed, n)
    # Block-cyclic column distribution: block j lives on image j % P.
    mine = {j: a[:, j * block : (j + 1) * block].copy() for j in range(nblocks) if j % p == img.rank}
    img.cluster.shared("hpl-factors", dict)[img.rank] = mine

    img.sync_all()
    t0 = img.now

    panel = np.empty((n, block))
    for k in range(nblocks):
        owner = k % p
        row0 = k * block
        if owner == img.rank:
            blk = mine[k]
            # Unblocked LU of the panel A[row0:, k-block].
            sub = blk[row0:, :]
            for j in range(block):
                sub[j + 1 :, j] /= sub[j, j]
                sub[j + 1 :, j + 1 :] -= np.outer(sub[j + 1 :, j], sub[j, j + 1 :])
            rows = n - row0
            img.compute(flops=rows * block * block)
            panel[...] = blk
        img.team_broadcast(panel, root=owner)
        l11 = np.tril(panel[row0 : row0 + block, :], -1) + np.eye(block)
        l21 = panel[row0 + block :, :]
        for j, blk in mine.items():
            if j <= k:
                continue
            # U12 = L11^-1 A12 ; A22 -= L21 @ U12
            u12 = np.linalg.solve(l11, blk[row0 : row0 + block, :])
            blk[row0 : row0 + block, :] = u12
            blk[row0 + block :, :] -= l21 @ u12
            rows = n - row0 - block
            img.compute(flops=block * block * block + 2.0 * rows * block * block)

    img.sync_all()
    elapsed = img.now - t0
    flops = 2.0 / 3.0 * n**3
    return HplResult(
        nranks=p,
        n=n,
        block=block,
        elapsed=elapsed,
        tflops=flops / elapsed / 1e12 if elapsed > 0 else float("inf"),
    )


def assemble_lu(shared_factors: dict[int, dict[int, np.ndarray]], n: int, block: int) -> tuple[np.ndarray, np.ndarray]:
    """Rebuild L and U from the distributed factored blocks (validation)."""
    lu = np.zeros((n, n))
    for mine in shared_factors.values():
        for j, blk in mine.items():
            lu[:, j * block : (j + 1) * block] = blk
    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    return lower, upper
